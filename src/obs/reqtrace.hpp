/**
 * @file
 * Request-scoped tracing: trace/span identities, per-stage timing,
 * and the slow-request capture ring.
 *
 * The serving layer (src/serve/server.cpp) threads one
 * RequestContext per request from JSON parse to response write and
 * stamps a monotonic duration for each pipeline stage (the ReqStage
 * taxonomy below). On top of that context sit three consumers:
 *
 *   - per-stage latency histograms in the metric registry, named
 *     `serve.stage{stage="parse"}` etc. - the exposition layer
 *     splits the embedded label out into one Prometheus family
 *     `lookhd_serve_stage_ns{stage=...}` (obs/exposition.hpp),
 *   - Prometheus exemplars: the request-latency histogram keeps the
 *     last trace id seen per bucket (obs/metrics.hpp), linking tail
 *     buckets to concrete requests,
 *   - SlowRequestLog: a bounded per-thread ring of full stage
 *     breakdowns for requests over a latency threshold or sampled
 *     1-in-N, served on /debug/requests and flushable as JSON lines.
 *
 * Trace ids are 128-bit (32 lowercase hex chars on the wire, the
 * W3C trace-context width), span ids 64-bit. Ids arrive in the
 * `trace` field of the serve JSON protocol or are generated
 * server-side; either way the id is echoed in the response so
 * clients can cross-reference server-side records.
 *
 * SlowRequestLog reuses the eventlog's publication pattern
 * (obs/eventlog.hpp): one mutex-guarded ring per writer thread,
 * rings chained through a release-published lock-free list, so the
 * steady-state append never contends with readers draining another
 * thread's ring. Unlike the event log, reads here are
 * NON-destructive - /debug/requests is a peek, and file flushing is
 * incremental via the per-record global sequence number.
 *
 * This file lives in src/obs/ deliberately: record wall-clock
 * stamps and trace-id seeding use std::chrono::system_clock, which
 * the determinism lint permits only here.
 *
 * Compile-time gate: kReqTraceCompiled mirrors LOOKHD_OBS_ENABLED.
 * The classes themselves are always built (like the rest of
 * src/obs/); the serving layer uses the constant to skip id
 * generation and capture entirely in -DLOOKHD_OBS=OFF builds while
 * keeping client-supplied trace echo (a protocol feature, not
 * instrumentation) always on.
 */

#ifndef LOOKHD_OBS_REQTRACE_HPP
#define LOOKHD_OBS_REQTRACE_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.hpp"

#ifndef LOOKHD_OBS_ENABLED
#define LOOKHD_OBS_ENABLED 1
#endif

namespace lookhd::obs {

class JsonWriter;

/** Compile-time request-tracing gate (follows -DLOOKHD_OBS). */
inline constexpr bool kReqTraceCompiled = LOOKHD_OBS_ENABLED != 0;

/** 128-bit trace identity; all-zero means "no trace". */
struct TraceId
{
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    bool zero() const { return hi == 0 && lo == 0; }

    bool
    operator==(const TraceId &other) const
    {
        return hi == other.hi && lo == other.lo;
    }
};

/** Fresh process-unique trace id (never all-zero). */
TraceId makeTraceId();

/** Fresh span id (never zero). */
std::uint64_t makeSpanId();

/** 32 lowercase hex chars. */
std::string traceIdHex(const TraceId &id);

/** 16 lowercase hex chars. */
std::string spanIdHex(std::uint64_t id);

/**
 * Parse exactly 32 hex chars (either case) into @p out.
 * @return false (out untouched) on any other input, including the
 * all-zero id, which the wire format reserves for "no trace".
 */
bool parseTraceIdHex(std::string_view hex, TraceId &out);

/**
 * The serving pipeline stages, in request order. Every completed
 * request carries one duration per stage:
 *
 *   parse       request line -> validated Request
 *   queue       enqueue -> popped by a worker
 *   batch_form  pop -> batch dispatched (gather wait)
 *   score       the batched kernel pass (shared by the batch)
 *   serialize   response JSON build
 *   write       response socket write
 */
enum class ReqStage : std::uint8_t
{
    kParse = 0,
    kQueue,
    kBatchForm,
    kScore,
    kSerialize,
    kWrite,
};

inline constexpr std::size_t kReqStageCount = 6;

/** Lower-case stage name ("parse", "queue", ...). */
const char *reqStageName(ReqStage stage);

/**
 * Registry metric name of one stage's latency histogram:
 * `serve.stage{stage="parse"}`. The exposition layer folds the
 * embedded label into the Prometheus family's label set.
 */
std::string reqStageMetricName(ReqStage stage);

/** Per-request trace state threaded through the serving pipeline. */
struct RequestContext
{
    TraceId trace;
    std::uint64_t span = 0;
    /** True when the id came from the request's `trace` field. */
    bool clientSupplied = false;
    /** util::Timer::processNanoseconds at parse start. */
    std::uint64_t startNs = 0;
    /** Duration of each completed stage, ns (ReqStage-indexed). */
    std::uint64_t stageNs[kReqStageCount] = {};

    void
    setStage(ReqStage stage, std::uint64_t ns)
    {
        stageNs[static_cast<std::size_t>(stage)] = ns;
    }

    std::uint64_t
    stage(ReqStage stage) const
    {
        return stageNs[static_cast<std::size_t>(stage)];
    }

    /** Sum of the recorded stage durations. */
    std::uint64_t stageSumNs() const;
};

/** Why a request landed in the SlowRequestLog. */
enum class CaptureReason : std::uint8_t
{
    kSlow = 0,
    kSampled,
};

const char *captureReasonName(CaptureReason reason);

/** One captured request: full stage breakdown plus outcome. */
struct SlowRequestRecord
{
    RequestContext ctx;
    /** Global capture order, 1-based; assigned by record(). */
    std::uint64_t seq = 0;
    /** Unix wall clock at capture, ms; stamped by record(). */
    std::uint64_t wallMs = 0;
    /** End-to-end latency, parse start to response written. */
    std::uint64_t totalNs = 0;
    std::size_t batchSize = 0;
    std::uint64_t predictedClass = 0;
    /** Raw top1-top2 score margin. */
    double margin = 0.0;
    CaptureReason reason = CaptureReason::kSlow;
    /** Echoed request id rendered as text ("" when absent). */
    std::string clientId;
};

/** One record as a JSON object value. */
void writeSlowRequestJson(JsonWriter &w, const SlowRequestRecord &r);

/**
 * Bounded capture ring for slow/sampled requests.
 *
 * Same shape as EventLog: each writer thread owns one fixed-capacity
 * overwrite-oldest ring (uncontended mutex), rings are chained into
 * a lock-free release-published list owned by the log. Readers are
 * non-destructive: snapshot() returns a seq-ordered copy for
 * /debug/requests, writeJsonLines() appends only records newer than
 * a caller-held watermark so a periodic file flush never duplicates.
 */
class SlowRequestLog
{
  public:
    /** @param ringCapacity Records retained per writer thread. */
    explicit SlowRequestLog(std::size_t ringCapacity = 256);
    ~SlowRequestLog();

    SlowRequestLog(const SlowRequestLog &) = delete;
    SlowRequestLog &operator=(const SlowRequestLog &) = delete;

    /** Capture one record (seq and wallMs are assigned here). */
    void record(SlowRequestRecord r);

    /** Copy of every retained record, ascending seq. */
    std::vector<SlowRequestRecord> snapshot() const;

    /**
     * Append records with seq > @p afterSeq as JSON lines, ascending
     * seq. @return the highest seq written (== @p afterSeq when
     * nothing was new) - feed it back in as the next watermark.
     */
    std::uint64_t writeJsonLines(std::ostream &out,
                                 std::uint64_t afterSeq) const;

    /** Records ever captured (retained or already overwritten). */
    std::uint64_t totalCaptured() const;

  private:
    struct Ring;

    Ring &ringForThisThread();

    /** Process-unique instance id keying the thread-local ring
     * cache (same scheme as EventLog). */
    const std::uint64_t id_;
    const std::size_t ringCapacity_;
    std::atomic<std::uint64_t> nextSeq_{1};
    /** Guards ring-list mutation and multi-ring reader passes. */
    mutable util::Mutex ringsMutex_;
    /** Release-published list head; rings live until destruction. */
    std::atomic<Ring *> ringsHead_{nullptr};
};

} // namespace lookhd::obs

#endif // LOOKHD_OBS_REQTRACE_HPP
