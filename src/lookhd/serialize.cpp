#include "lookhd/serialize.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "quant/boundary_quantizer.hpp"
#include "util/check.hpp"

namespace lookhd {

namespace {

constexpr char kMagic[4] = {'L', 'K', 'H', 'D'};
// v1: everything through the retrain history. v2 appends the
// quantized serving forms (int8 + binary class rows) behind a
// presence byte, a section magic, and an FNV-1a checksum; v1 files
// still load (they simply carry no quantized forms).
constexpr std::uint8_t kVersion = 2;
constexpr std::uint8_t kMinVersion = 1;

// The quantized section's own magic and format bitmask (bit 0: int8
// rows, bit 1: packed binary rows). Both forms are always written
// together today; the mask exists so future formats can be added
// without another version bump.
constexpr char kQuantMagic[4] = {'Q', 'N', 'T', 'Z'};
constexpr std::uint8_t kQuantFormats = 3;

// Sanity caps applied to header fields before any allocation, so an
// absurd or hostile header cannot trigger a multi-gigabyte reserve or
// an overflowing size computation.
constexpr std::uint64_t kMaxDim = std::uint64_t{1} << 28;
constexpr std::uint64_t kMaxQuantLevels = std::uint64_t{1} << 20;
constexpr std::uint64_t kMaxFeatures = std::uint64_t{1} << 24;
constexpr std::uint64_t kMaxClasses = std::uint64_t{1} << 20;
constexpr std::uint64_t kMaxHistory = std::uint64_t{1} << 20;

// --- Primitive writers/readers (little-endian, fixed width) ---

void
writeBytes(std::ostream &out, const void *data, std::size_t size)
{
    out.write(static_cast<const char *>(data),
              static_cast<std::streamsize>(size));
    if (!out)
        throw SerializeError("write failure");
}

void
readBytes(std::istream &in, void *data, std::size_t size)
{
    in.read(static_cast<char *>(data),
            static_cast<std::streamsize>(size));
    if (!in || in.gcount() != static_cast<std::streamsize>(size))
        throw SerializeError("truncated or unreadable input");
}

void
writeU8(std::ostream &out, std::uint8_t v)
{
    writeBytes(out, &v, 1);
}

std::uint8_t
readU8(std::istream &in)
{
    std::uint8_t v;
    readBytes(in, &v, 1);
    return v;
}

void
writeU64(std::ostream &out, std::uint64_t v)
{
    std::uint8_t bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
    writeBytes(out, bytes, 8);
}

std::uint64_t
readU64(std::istream &in)
{
    std::uint8_t bytes[8];
    readBytes(in, bytes, 8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
    return v;
}

void
writeDouble(std::ostream &out, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    writeU64(out, bits);
}

double
readDouble(std::istream &in)
{
    const std::uint64_t bits = readU64(in);
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
}

void
writeDoubles(std::ostream &out, const std::vector<double> &v)
{
    writeU64(out, v.size());
    for (double x : v)
        writeDouble(out, x);
}

std::vector<double>
readDoubles(std::istream &in, std::uint64_t cap = ~std::uint64_t{0})
{
    const std::uint64_t count = readU64(in);
    if (count > cap)
        throw SerializeError("implausible array length");
    std::vector<double> v(count);
    for (auto &x : v)
        x = readDouble(in);
    return v;
}

void
writeBipolar(std::ostream &out, const hdc::BipolarHv &hv)
{
    writeU64(out, hv.size());
    writeBytes(out, hv.data(), hv.size());
}

hdc::BipolarHv
readBipolar(std::istream &in)
{
    const std::uint64_t size = readU64(in);
    if (size > (std::uint64_t{1} << 28))
        throw SerializeError("implausible hypervector size");
    hdc::BipolarHv hv(size);
    readBytes(in, hv.data(), size);
    for (auto v : hv) {
        if (v != 1 && v != -1)
            throw SerializeError("corrupt bipolar element");
    }
    return hv;
}

void
writeIntHv(std::ostream &out, const hdc::IntHv &hv)
{
    writeU64(out, hv.size());
    for (auto v : hv)
        writeU64(out, static_cast<std::uint64_t>(
                          static_cast<std::int64_t>(v)));
}

hdc::IntHv
readIntHv(std::istream &in)
{
    const std::uint64_t size = readU64(in);
    if (size > (std::uint64_t{1} << 28))
        throw SerializeError("implausible hypervector size");
    hdc::IntHv hv(size);
    for (auto &v : hv) {
        v = static_cast<std::int32_t>(
            static_cast<std::int64_t>(readU64(in)));
    }
    return hv;
}

// --- Quantized section checksum (FNV-1a 64) ---
//
// The quantized rows are the only payload whose corruption would NOT
// be caught by cross-field consistency checks (any byte pattern is a
// plausible int8 row), so the section carries its own checksum,
// computed streaming on both sides.

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t
fnv1a(std::uint64_t hash, const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= kFnvPrime;
    }
    return hash;
}

/** writeBytes that folds everything written into a running hash. */
struct ChecksumWriter
{
    std::ostream &out;
    std::uint64_t hash = kFnvOffset;

    void
    bytes(const void *data, std::size_t size)
    {
        writeBytes(out, data, size);
        hash = fnv1a(hash, data, size);
    }
    void
    u8(std::uint8_t v)
    {
        bytes(&v, 1);
    }
    void
    u64(std::uint64_t v)
    {
        std::uint8_t b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = static_cast<std::uint8_t>(v >> (8 * i));
        bytes(b, 8);
    }
    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, 8);
        u64(bits);
    }
};

/** readBytes that folds everything read into a running hash. */
struct ChecksumReader
{
    std::istream &in;
    std::uint64_t hash = kFnvOffset;

    void
    bytes(void *data, std::size_t size)
    {
        readBytes(in, data, size);
        hash = fnv1a(hash, data, size);
    }
    std::uint8_t
    u8()
    {
        std::uint8_t v;
        bytes(&v, 1);
        return v;
    }
    std::uint64_t
    u64()
    {
        std::uint8_t b[8];
        bytes(b, 8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
        return v;
    }
    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, 8);
        return v;
    }
};

void
writeQuantizedSection(std::ostream &out, const QuantizedServingModel &qm)
{
    writeU8(out, 1);
    ChecksumWriter cw{out};
    cw.bytes(kQuantMagic, 4);
    cw.u8(kQuantFormats);
    cw.u64(qm.numClasses());
    cw.u64(qm.dim());
    cw.bytes(qm.int8Rows().data(), qm.int8Rows().size());
    for (const double s : qm.scales())
        cw.f64(s);
    for (const hdc::PackedHv &row : qm.binaryRows())
        for (const std::uint64_t w : row.data())
            cw.u64(w);
    writeU64(out, cw.hash);
}

std::shared_ptr<const QuantizedServingModel>
readQuantizedSection(std::istream &in, std::uint64_t dim,
                     std::uint64_t classes)
{
    const std::uint8_t present = readU8(in);
    if (present > 1)
        throw SerializeError("invalid quantized-presence flag");
    if (present == 0)
        return nullptr;

    ChecksumReader cr{in};
    char magic[4];
    cr.bytes(magic, 4);
    if (std::memcmp(magic, kQuantMagic, 4) != 0)
        throw SerializeError("quantized section magic mismatch");
    const std::uint8_t formats = cr.u8();
    if (formats != kQuantFormats)
        throw SerializeError("unsupported quantized precision tag");
    const std::uint64_t k = cr.u64();
    if (k != classes)
        throw SerializeError("quantized class count mismatch");
    const std::uint64_t qdim = cr.u64();
    if (qdim != dim)
        throw SerializeError(
            "quantized dimensionality does not match header");

    // Shapes are pinned to the already-validated model's, so these
    // allocations are bounded by what the models already hold.
    std::vector<std::int8_t> rows(k * dim);
    cr.bytes(rows.data(), rows.size());
    std::vector<double> scales(k);
    for (auto &s : scales)
        s = cr.f64();
    const std::size_t words = (dim + 63) / 64;
    std::vector<hdc::PackedHv> binary;
    binary.reserve(k);
    for (std::uint64_t c = 0; c < k; ++c) {
        std::vector<std::uint64_t> w(words);
        for (auto &word : w)
            word = cr.u64();
        // PackedHv's adoption ctor rejects nonzero tail bits; the
        // surrounding loadClassifier() maps the contract violation
        // into SerializeError.
        binary.emplace_back(dim, std::move(w));
    }

    const std::uint64_t expected = cr.hash;
    if (readU64(in) != expected)
        throw SerializeError("quantized section checksum mismatch");

    return std::make_shared<const QuantizedServingModel>(
        dim, std::move(rows), std::move(scales), std::move(binary));
}

} // namespace

void
saveClassifier(const Classifier &clf, std::ostream &out)
{
    LOOKHD_CHECK(clf.fitted(), "cannot save an unfitted classifier");
    const ClassifierConfig &cfg = clf.config();

    writeBytes(out, kMagic, 4);
    writeU8(out, kVersion);

    // Configuration.
    writeU64(out, cfg.dim);
    writeU64(out, cfg.quantLevels);
    writeU64(out, cfg.chunkSize);
    writeU8(out, cfg.quantization == QuantizationKind::kEqualized);
    writeU8(out, cfg.perFeatureQuantization);
    writeU8(out, cfg.levelGen == hdc::LevelGen::kDistinctHalf);
    writeU8(out, cfg.compressModel);
    writeU8(out, cfg.compression.decorrelate);
    writeU64(out, cfg.compression.maxClassesPerGroup);
    writeU8(out, cfg.compression.scaleScores);
    writeU64(out, cfg.retrainEpochs);
    writeU64(out, cfg.seed);

    const LookupEncoder &encoder = clf.encoder();
    writeU64(out, encoder.chunks().numFeatures());

    // Quantization state (boundaries fully determine behaviour).
    if (cfg.perFeatureQuantization) {
        const quant::QuantizerBank &bank = clf.quantizerBank();
        writeU64(out, bank.numFeatures());
        for (std::size_t f = 0; f < bank.numFeatures(); ++f)
            writeDoubles(out, bank.at(f).boundaries());
    } else {
        writeDoubles(out, clf.quantizer().boundaries());
    }

    // Level memory.
    const hdc::LevelMemory &levels = encoder.levelMemory();
    writeU64(out, levels.levels());
    for (std::size_t l = 0; l < levels.levels(); ++l)
        writeBipolar(out, levels.at(l));

    // Position keys.
    const hdc::KeyMemory &positions = encoder.positionKeys();
    writeU64(out, positions.count());
    for (std::size_t c = 0; c < positions.count(); ++c)
        writeBipolar(out, positions.at(c));

    // Models. Bit 0: compressed present; bit 1: uncompressed present.
    const bool has_compressed = cfg.compressModel;
    writeU8(out, static_cast<std::uint8_t>(
                     (has_compressed ? 1 : 0) | 2));

    if (has_compressed) {
        const CompressedModel &cm = clf.compressedModel();
        writeU64(out, cm.numClasses());
        writeU64(out, cm.numGroups());
        for (std::size_t g = 0; g < cm.numGroups(); ++g)
            writeDoubles(out, cm.groupHv(g));
        for (std::size_t c = 0; c < cm.numClasses(); ++c)
            writeBipolar(out, cm.classKeys().at(c));
        std::vector<double> norms(cm.numClasses());
        for (std::size_t c = 0; c < cm.numClasses(); ++c)
            norms[c] = cm.trackedNorm(c);
        writeDoubles(out, norms);
        writeDoubles(out, cm.commonDirection());
    }
    {
        const hdc::ClassModel &model = clf.uncompressedModel();
        writeU64(out, model.numClasses());
        for (std::size_t c = 0; c < model.numClasses(); ++c)
            writeIntHv(out, model.classHv(c));
    }

    writeDoubles(out, clf.retrainHistory());

    // v2: quantized serving forms, derived from the trained model at
    // save time (reusing already-attached forms when present, so a
    // load-save round trip is byte-stable).
    if (clf.hasQuantized()) {
        writeQuantizedSection(out, clf.quantizedModel());
    } else {
        // Same source Classifier::quantize() prefers: the
        // uncompressed normalized prototypes (always serialized
        // above, so always present here). Deriving from the
        // compressed group hypervectors instead would wreck the
        // binary form's accuracy - see quantize().
        writeQuantizedSection(
            out, QuantizedServingModel::fromClassModel(
                     clf.uncompressedModel()));
    }
}

namespace {

Classifier
loadClassifierImpl(std::istream &in)
{
    char magic[4];
    readBytes(in, magic, 4);
    if (std::memcmp(magic, kMagic, 4) != 0)
        throw SerializeError("not a LookHD model file");
    const std::uint8_t version = readU8(in);
    if (version < kMinVersion || version > kVersion)
        throw SerializeError("unsupported model version");

    ClassifierConfig cfg;
    cfg.dim = readU64(in);
    if (cfg.dim == 0 || cfg.dim > kMaxDim)
        throw SerializeError("implausible dimensionality in header");
    cfg.quantLevels = readU64(in);
    if (cfg.quantLevels < 2 || cfg.quantLevels > kMaxQuantLevels)
        throw SerializeError("implausible quantization levels in header");
    cfg.chunkSize = readU64(in);
    if (cfg.chunkSize == 0 || cfg.chunkSize > kMaxFeatures)
        throw SerializeError("implausible chunk size in header");
    cfg.quantization = readU8(in) ? QuantizationKind::kEqualized
                                  : QuantizationKind::kLinear;
    cfg.perFeatureQuantization = readU8(in) != 0;
    cfg.levelGen = readU8(in) ? hdc::LevelGen::kDistinctHalf
                              : hdc::LevelGen::kPaperRandom;
    cfg.compressModel = readU8(in) != 0;
    cfg.compression.decorrelate = readU8(in) != 0;
    cfg.compression.maxClassesPerGroup = readU64(in);
    if (cfg.compression.maxClassesPerGroup == 0 ||
        cfg.compression.maxClassesPerGroup > kMaxClasses)
        throw SerializeError("implausible group size in header");
    cfg.compression.keepReference = false;
    cfg.compression.scaleScores = readU8(in) != 0;
    cfg.retrainEpochs = readU64(in);
    cfg.seed = readU64(in);

    const std::uint64_t num_features = readU64(in);
    if (num_features == 0 || num_features > kMaxFeatures)
        throw SerializeError("implausible feature count in header");

    std::shared_ptr<const quant::Quantizer> quantizer;
    std::shared_ptr<const quant::QuantizerBank> bank;
    if (cfg.perFeatureQuantization) {
        const std::uint64_t bank_features = readU64(in);
        if (bank_features != num_features)
            throw SerializeError("bank feature count mismatch");
        std::vector<std::vector<double>> bounds(bank_features);
        for (auto &b : bounds)
            b = readDoubles(in, 1 << 20);
        bank = std::make_shared<quant::QuantizerBank>(
            quant::QuantizerBank::fromBoundaries(cfg.quantLevels,
                                                 bounds));
    } else {
        auto bounds = readDoubles(in, 1 << 20);
        if (bounds.size() + 1 != cfg.quantLevels)
            throw SerializeError("quantizer boundary mismatch");
        quantizer =
            std::make_shared<quant::BoundaryQuantizer>(bounds);
    }

    const std::uint64_t num_levels = readU64(in);
    if (num_levels != cfg.quantLevels)
        throw SerializeError("level memory size mismatch");
    std::vector<hdc::BipolarHv> level_hvs(num_levels);
    for (auto &hv : level_hvs) {
        hv = readBipolar(in);
        if (hv.size() != cfg.dim)
            throw SerializeError("level dimensionality mismatch");
    }
    auto levels = std::make_shared<hdc::LevelMemory>(
        std::move(level_hvs));

    const ChunkSpec chunks(num_features, cfg.chunkSize);
    const std::uint64_t num_positions = readU64(in);
    if (num_positions != chunks.numChunks())
        throw SerializeError("position key count does not match chunks");
    std::vector<hdc::BipolarHv> position_hvs(num_positions);
    for (auto &hv : position_hvs) {
        hv = readBipolar(in);
        if (hv.size() != cfg.dim)
            throw SerializeError("position key dimensionality mismatch");
    }
    hdc::KeyMemory positions(std::move(position_hvs));

    std::unique_ptr<LookupEncoder> encoder;
    if (bank) {
        encoder = std::make_unique<LookupEncoder>(
            levels, bank, chunks, std::move(positions), cfg.encoder);
    } else {
        encoder = std::make_unique<LookupEncoder>(
            levels, quantizer, chunks, std::move(positions),
            cfg.encoder);
    }

    const std::uint8_t model_flags = readU8(in);
    if (model_flags == 0 || (model_flags & ~std::uint8_t{3}) != 0)
        throw SerializeError("invalid model-presence flags");
    std::optional<CompressedModel> compressed;
    std::optional<hdc::ClassModel> model;

    if (model_flags & 1) {
        const std::uint64_t k = readU64(in);
        if (k == 0 || k > kMaxClasses)
            throw SerializeError("implausible class count");
        const std::uint64_t num_groups = readU64(in);
        if (num_groups == 0 || num_groups > k)
            throw SerializeError("implausible group count");
        std::vector<hdc::RealHv> groups(num_groups);
        for (auto &g : groups) {
            g = readDoubles(in, kMaxDim);
            if (g.size() != cfg.dim)
                throw SerializeError("group dimensionality mismatch");
        }
        std::vector<hdc::BipolarHv> key_hvs(k);
        for (auto &hv : key_hvs) {
            hv = readBipolar(in);
            if (hv.size() != cfg.dim)
                throw SerializeError("class key dimensionality mismatch");
        }
        auto norms = readDoubles(in, k);
        if (norms.size() != k)
            throw SerializeError("per-class norm count mismatch");
        auto common = readDoubles(in, kMaxDim);
        if (!common.empty() && common.size() != cfg.dim)
            throw SerializeError("common direction dimensionality mismatch");
        CompressionConfig cc = cfg.compression;
        cc.keepReference = false;
        compressed.emplace(cc, hdc::KeyMemory(std::move(key_hvs)),
                           std::move(groups), std::move(norms),
                           std::move(common));
    }
    if (model_flags & 2) {
        const std::uint64_t k = readU64(in);
        if (k == 0 || k > kMaxClasses)
            throw SerializeError("implausible class count");
        hdc::ClassModel restored(cfg.dim, k);
        for (std::size_t c = 0; c < k; ++c) {
            hdc::IntHv hv = readIntHv(in);
            if (hv.size() != cfg.dim)
                throw SerializeError("class dimensionality mismatch");
            restored.classHv(c) = std::move(hv);
        }
        model.emplace(std::move(restored));
    }

    auto history = readDoubles(in, kMaxHistory);

    std::shared_ptr<const QuantizedServingModel> quantized;
    if (version >= 2) {
        const std::uint64_t classes = compressed
                                          ? compressed->numClasses()
                                          : model->numClasses();
        quantized = readQuantizedSection(in, cfg.dim, classes);
    }

    Classifier clf = Classifier::restore(
        std::move(cfg), std::move(levels), std::move(quantizer),
        std::move(bank), std::move(encoder), std::move(model),
        std::move(compressed), std::move(history));
    if (quantized)
        clf.attachQuantized(std::move(quantized));
    return clf;
}

} // namespace

Classifier
loadClassifier(std::istream &in)
{
    // Constructors invoked during restore enforce their own contracts;
    // a malformed file that trips one is still a bad *file*, so the
    // violation is rethrown in the serialize error domain.
    try {
        return loadClassifierImpl(in);
    } catch (const util::ContractViolation &e) {
        throw SerializeError(std::string("inconsistent model file: ") +
                             e.what());
    }
}

void
saveClassifierFile(const Classifier &clf, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw SerializeError("cannot open " + path + " for write");
    saveClassifier(clf, out);
}

Classifier
loadClassifierFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SerializeError("cannot open " + path);
    return loadClassifier(in);
}

} // namespace lookhd
