/**
 * @file
 * Pre-stored encoded chunk hypervectors (paper Sec. III-C).
 *
 * The lookup table holds, for every possible address (every base-q
 * level combination of a chunk), the chunk's Eq. 2 encoding
 * H = L(l_0) + rho L(l_1) + ... + rho^{s-1} L(l_{s-1}). In hardware it
 * lives in BRAM; here it is a dense vector of rows.
 *
 * The table is only materialized when q^s rows fit a memory budget;
 * encodeAddress() computes the identical row on the fly otherwise, so
 * experiments can sweep chunk sizes past what any real table would
 * hold while staying bit-exact with the lookup semantics.
 */

#ifndef LOOKHD_LOOKHD_LOOKUP_TABLE_HPP
#define LOOKHD_LOOKHD_LOOKUP_TABLE_HPP

#include <memory>
#include <optional>

#include "hdc/item_memory.hpp"
#include "lookhd/codebook.hpp"

namespace lookhd {

/** Encoded-chunk store for one chunk length. */
class ChunkLookupTable
{
  public:
    /**
     * @param levels Level memory the encodings draw from.
     * @param chunk_len Number of features in this chunk (s).
     * @param materialize_budget_bytes Materialize the dense table only
     *        if it fits this budget; 0 forces on-the-fly computation.
     */
    ChunkLookupTable(std::shared_ptr<const hdc::LevelMemory> levels,
                     std::size_t chunk_len,
                     std::size_t materialize_budget_bytes);

    hdc::Dim dim() const { return levels_->dim(); }
    std::size_t chunkLen() const { return chunkLen_; }
    std::size_t quantLevels() const { return levels_->levels(); }

    /** Number of addresses q^s. */
    Address addressSpaceSize() const { return space_; }

    /** Whether the dense table is resident in memory. */
    bool materialized() const { return rows_.has_value(); }

    /** Bytes of the dense table (whether or not materialized). */
    std::size_t tableBytes() const;

    /**
     * The encoded chunk hypervector at @p addr. Returns a reference
     * into the dense table when materialized; otherwise fills
     * @p scratch and returns it.
     */
    const hdc::IntHv &row(Address addr, hdc::IntHv &scratch) const;

    /** Compute the Eq. 2 encoding of @p addr from the level memory. */
    hdc::IntHv encodeAddress(Address addr) const;

  private:
    std::shared_ptr<const hdc::LevelMemory> levels_;
    std::size_t chunkLen_;
    Address space_;
    /** Dense table: rows_[addr] when materialized. */
    std::optional<std::vector<hdc::IntHv>> rows_;
};

} // namespace lookhd

#endif // LOOKHD_LOOKHD_LOOKUP_TABLE_HPP
