#include "lookhd/retrainer.hpp"

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace lookhd {

std::vector<hdc::IntHv>
Retrainer::encodeAll(const data::Dataset &ds) const
{
    std::vector<hdc::IntHv> out;
    out.reserve(ds.size());
    for (std::size_t i = 0; i < ds.size(); ++i)
        out.push_back(encoder_.encode(ds.row(i)));
    return out;
}

RetrainResult
Retrainer::retrain(CompressedModel &model, const data::Dataset &train,
                   const RetrainOptions &options) const
{
    return retrainEncoded(model, encodeAll(train), train.labels(),
                          options);
}

RetrainResult
Retrainer::retrainEncoded(CompressedModel &model,
                          const std::vector<hdc::IntHv> &encoded,
                          const std::vector<std::size_t> &labels,
                          const RetrainOptions &options) const
{
    LOOKHD_CHECK(encoded.size() == labels.size() && !encoded.empty(),
                 "encoded/labels size mismatch");

    LOOKHD_SPAN("lookhd.retrain", "retrain");
    RetrainResult result;
    result.accuracyHistory.push_back(
        evaluateCompressed(model, encoded, labels));

    // Optional held-out validation split for early stopping.
    std::vector<std::size_t> update_idx(encoded.size());
    for (std::size_t i = 0; i < update_idx.size(); ++i)
        update_idx[i] = i;
    std::vector<std::size_t> val_idx;
    if (options.validationFraction > 0.0) {
        LOOKHD_CHECK(options.validationFraction < 1.0,
                     "validation fraction must be below 1");
        util::Rng rng(options.validationSeed);
        rng.shuffle(update_idx);
        const auto cut = static_cast<std::size_t>(
            options.validationFraction *
            static_cast<double>(update_idx.size()));
        val_idx.assign(update_idx.begin(), update_idx.begin() + cut);
        update_idx.erase(update_idx.begin(),
                         update_idx.begin() + cut);
        LOOKHD_CHECK(!update_idx.empty(),
                     "validation split leaves no training points");
    }
    auto validation_accuracy = [&](const CompressedModel &m) {
        std::size_t ok = 0;
        for (std::size_t i : val_idx)
            ok += m.predict(encoded[i]) == labels[i];
        return val_idx.empty()
                   ? 0.0
                   : static_cast<double>(ok) /
                         static_cast<double>(val_idx.size());
    };

    double best_val = -1.0;
    std::size_t stale = 0;
    CompressedModel best_model = model;

    for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
        LOOKHD_SPAN("lookhd.retrain.epoch", "retrain");
        // The hardware applies updates to a copy while the original
        // keeps serving similarity checks (Sec. V-C).
        CompressedModel working = model;
        CompressedModel &oracle = options.deferredSwap ? model : working;

        for (std::size_t i : update_idx) {
            const std::size_t pred = oracle.predict(encoded[i]);
            if (pred == labels[i])
                continue;
            double scale = options.learningRate;
            if (options.normalizeQueries) {
                const double n = hdc::norm(encoded[i]);
                if (n > 0.0)
                    scale /= n;
            }
            working.applyUpdate(labels[i], pred, encoded[i], scale);
            ++result.updates;
        }
        model = std::move(working);
        ++result.epochsRun;
        result.accuracyHistory.push_back(
            evaluateCompressed(model, encoded, labels));

        if (!val_idx.empty()) {
            const double val = validation_accuracy(model);
            result.validationHistory.push_back(val);
            if (val > best_val) {
                best_val = val;
                best_model = model;
                stale = 0;
            } else if (++stale >= options.earlyStopPatience) {
                result.stoppedEarly = true;
                break;
            }
        }
    }
    if (!val_idx.empty())
        model = std::move(best_model);
    return result;
}

double
Retrainer::evaluate(const CompressedModel &model,
                    const data::Dataset &test) const
{
    LOOKHD_CHECK(!test.empty(), "empty test set");
    std::size_t correct = 0;
    for (std::size_t i = 0; i < test.size(); ++i) {
        const hdc::IntHv query = encoder_.encode(test.row(i));
        correct += model.predict(query) == test.label(i);
    }
    return static_cast<double>(correct) / static_cast<double>(test.size());
}

double
evaluateCompressed(const CompressedModel &model,
                   const std::vector<hdc::IntHv> &encoded,
                   const std::vector<std::size_t> &labels)
{
    LOOKHD_CHECK(!encoded.empty(), "empty evaluation set");
    std::size_t correct = 0;
    for (std::size_t i = 0; i < encoded.size(); ++i)
        correct += model.predict(encoded[i]) == labels[i];
    return static_cast<double>(correct) /
           static_cast<double>(encoded.size());
}

} // namespace lookhd
