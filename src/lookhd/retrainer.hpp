/**
 * @file
 * Compressed-domain retraining (paper Sec. IV-D, Fig. 9).
 *
 * Retraining iterates over the training set, checks each point against
 * the model, and applies a perceptron correction to mispredictions.
 * LookHD runs the similarity check on the *compressed* model and
 * applies the correction in the compressed domain:
 *
 *   C <- C + P'_correct * H - P'_wrong * H
 *
 * Following the hardware (Sec. V-C), updates land on a copy of the
 * compressed model while the original serves lookups for the rest of
 * the epoch; the copy is swapped in at the epoch boundary.
 */

#ifndef LOOKHD_LOOKHD_RETRAINER_HPP
#define LOOKHD_LOOKHD_RETRAINER_HPP

#include "data/dataset.hpp"
#include "lookhd/compressed_model.hpp"
#include "lookhd/lookup_encoder.hpp"

namespace lookhd {

/** Settings for compressed-domain retraining. */
struct RetrainOptions
{
    /** Number of epochs (paper: ~10). */
    std::size_t epochs = 10;

    /** Update magnitude multiplier. */
    double learningRate = 1.0;

    /**
     * Scale each update by 1/||H||. Off by default: the compressed
     * model holds raw class sums, so adding the raw query reproduces
     * the baseline perceptron's relative step size.
     */
    bool normalizeQueries = false;

    /**
     * Swap the updated copy in only at epoch end (the pipelined
     * hardware behaviour). When false, updates apply immediately
     * (classic sequential perceptron).
     */
    bool deferredSwap = true;

    /**
     * Hold out this fraction of the training points as a validation
     * set and stop early once validation accuracy stops improving
     * (paper Sec. II-B: retraining continues "until the HDC accuracy
     * stabilized over the validation data, which is a part of the
     * training dataset"). 0 disables early stopping.
     */
    double validationFraction = 0.0;

    /** Epochs without validation improvement before stopping. */
    std::size_t earlyStopPatience = 3;

    /** Seed for the validation split. */
    std::uint64_t validationSeed = 1234;
};

/** Outcome of a retraining run. */
struct RetrainResult
{
    /** Training accuracy before retraining and after each epoch. */
    std::vector<double> accuracyHistory;
    /** Validation accuracy per epoch (empty unless early stopping). */
    std::vector<double> validationHistory;
    /** Total mispredictions corrected. */
    std::size_t updates = 0;
    std::size_t epochsRun = 0;
    /** Whether validation-based early stopping fired. */
    bool stoppedEarly = false;
};

/** Drives compressed-domain retraining over a dataset. */
class Retrainer
{
  public:
    explicit Retrainer(const LookupEncoder &encoder)
        : encoder_(encoder)
    {}

    /** Encode the dataset once (queries are reused every epoch). */
    std::vector<hdc::IntHv> encodeAll(const data::Dataset &ds) const;

    /** Retrain @p model in place. */
    RetrainResult retrain(CompressedModel &model,
                          const data::Dataset &train,
                          const RetrainOptions &options = {}) const;

    /** Retrain from pre-encoded queries. */
    RetrainResult retrainEncoded(CompressedModel &model,
                                 const std::vector<hdc::IntHv> &encoded,
                                 const std::vector<std::size_t> &labels,
                                 const RetrainOptions &options = {}) const;

    /** Accuracy of @p model on @p test. */
    double evaluate(const CompressedModel &model,
                    const data::Dataset &test) const;

  private:
    const LookupEncoder &encoder_;
};

/** Accuracy of a compressed model on pre-encoded queries. */
double evaluateCompressed(const CompressedModel &model,
                          const std::vector<hdc::IntHv> &encoded,
                          const std::vector<std::size_t> &labels);

} // namespace lookhd

#endif // LOOKHD_LOOKHD_RETRAINER_HPP
