#include "lookhd/codebook.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace lookhd {

std::size_t
codebookBits(std::size_t q)
{
    LOOKHD_CHECK(q >= 2, "codebook needs q >= 2");
    std::size_t bits = 0;
    std::size_t span = 1;
    while (span < q) {
        span <<= 1;
        ++bits;
    }
    return bits;
}

Address
addressOf(std::span<const std::size_t> levels, std::size_t q)
{
    Address addr = 0;
    Address scale = 1;
    for (std::size_t j = 0; j < levels.size(); ++j) {
        LOOKHD_CHECK(levels[j] < q, "level index out of range");
        addr = util::checkedAdd(addr,
                                util::checkedMul(scale, levels[j]));
        if (j + 1 < levels.size())
            scale = util::checkedMul(scale, q);
    }
    return addr;
}

Address
bitAddressOf(std::span<const std::size_t> levels, std::size_t q)
{
    const std::size_t bits = codebookBits(q);
    LOOKHD_CHECK((std::size_t{1} << bits) == q,
                 "bit addressing requires power-of-2 q");
    LOOKHD_CHECK(bits * levels.size() <= 64,
                 "chunk address overflows 64 bits");
    Address addr = 0;
    for (std::size_t j = 0; j < levels.size(); ++j) {
        LOOKHD_CHECK(levels[j] < q, "level index out of range");
        addr |= static_cast<Address>(levels[j]) << (j * bits);
    }
    return addr;
}

void
decodeAddress(Address addr, std::size_t q,
              std::span<std::size_t> levels_out)
{
    for (std::size_t j = 0; j < levels_out.size(); ++j) {
        levels_out[j] = static_cast<std::size_t>(addr % q);
        addr /= q;
    }
    LOOKHD_CHECK(addr == 0, "address out of range for chunk");
}

Address
addressSpace(std::size_t q, std::size_t r)
{
    return util::checkedMulPow(q, r);
}

bool
tableFits(std::size_t q, std::size_t r, std::size_t dim,
          std::size_t budget_bytes)
{
    // q^r might overflow; probe multiplicatively against the budget
    // instead of computing it outright.
    const std::size_t bytes_per_row = dim * sizeof(std::int32_t);
    if (bytes_per_row == 0)
        return false;
    const std::size_t max_rows = budget_bytes / bytes_per_row;
    Address rows = 1;
    for (std::size_t j = 0; j < r; ++j) {
        if (rows > max_rows / q + 1)
            return false;
        rows *= q;
        if (rows > max_rows)
            return false;
    }
    return true;
}

} // namespace lookhd
