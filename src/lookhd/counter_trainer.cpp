#include "lookhd/counter_trainer.hpp"

#include <algorithm>

#include "hdc/kernels.hpp"
#include "obs/obs.hpp"
#include "par/thread_pool.hpp"
#include "util/check.hpp"

namespace lookhd {

ChunkCounters::ChunkCounters(Address space, Address dense_threshold)
    : space_(space)
{
    LOOKHD_CHECK(space != 0, "counter space must be nonzero");
    if (space <= dense_threshold)
        denseCounts_.assign(static_cast<std::size_t>(space), 0);
}

void
ChunkCounters::increment(Address addr)
{
    LOOKHD_CHECK_BOUNDS(addr, space_);
    if (!denseCounts_.empty())
        ++denseCounts_[static_cast<std::size_t>(addr)];
    else
        ++sparseCounts_[addr];
    ++total_;
}

void
ChunkCounters::add(Address addr, std::uint32_t cnt)
{
    LOOKHD_CHECK_BOUNDS(addr, space_);
    if (cnt == 0)
        return;
    if (!denseCounts_.empty())
        denseCounts_[static_cast<std::size_t>(addr)] += cnt;
    else
        sparseCounts_[addr] += cnt;
    total_ += cnt;
}

void
ChunkCounters::mergeFrom(const ChunkCounters &other)
{
    LOOKHD_CHECK(space_ == other.space_,
                 "cannot merge counters over different address spaces");
    other.forEach([this](Address addr, std::uint32_t cnt) {
        add(addr, cnt);
    });
}

std::uint32_t
ChunkCounters::count(Address addr) const
{
    LOOKHD_CHECK_BOUNDS(addr, space_);
    if (!denseCounts_.empty())
        return denseCounts_[static_cast<std::size_t>(addr)];
    const auto it = sparseCounts_.find(addr);
    return it == sparseCounts_.end() ? 0 : it->second;
}

std::size_t
ChunkCounters::distinct() const
{
    if (!denseCounts_.empty()) {
        std::size_t n = 0;
        for (auto c : denseCounts_)
            n += c > 0;
        return n;
    }
    return sparseCounts_.size();
}

void
ChunkCounters::forEach(
    const std::function<void(Address, std::uint32_t)> &fn) const
{
    if (!denseCounts_.empty()) {
        for (std::size_t a = 0; a < denseCounts_.size(); ++a) {
            if (denseCounts_[a] > 0)
                fn(static_cast<Address>(a), denseCounts_[a]);
        }
    } else {
        for (const auto &[addr, cnt] : sparseCounts_)
            fn(addr, cnt);
    }
}

CounterBank::CounterBank(const LookupEncoder &encoder,
                         std::size_t num_classes,
                         const CounterTrainerConfig &config)
{
    LOOKHD_CHECK(num_classes != 0, "counter bank needs classes");
    counters_.reserve(num_classes);
    for (std::size_t c = 0; c < num_classes; ++c) {
        std::vector<ChunkCounters> per_chunk;
        per_chunk.reserve(encoder.chunks().numChunks());
        for (std::size_t ch = 0; ch < encoder.chunks().numChunks(); ++ch) {
            per_chunk.emplace_back(
                encoder.tableFor(ch).addressSpaceSize(),
                config.denseCounterThreshold);
        }
        counters_.push_back(std::move(per_chunk));
    }
}

std::size_t
CounterBank::numChunks() const
{
    return counters_.empty() ? 0 : counters_.front().size();
}

void
CounterBank::observe(std::size_t label,
                     std::span<const Address> addresses)
{
    LOOKHD_CHECK_BOUNDS(label, counters_.size());
    auto &per_chunk = counters_[label];
    LOOKHD_CHECK(addresses.size() == per_chunk.size(),
                 "address count mismatch");
    for (std::size_t ch = 0; ch < addresses.size(); ++ch)
        per_chunk[ch].increment(addresses[ch]);
}

void
CounterBank::mergeFrom(const CounterBank &other)
{
    LOOKHD_CHECK(counters_.size() == other.counters_.size(),
                 "cannot merge banks with different class counts");
    for (std::size_t cls = 0; cls < counters_.size(); ++cls) {
        LOOKHD_CHECK(counters_[cls].size() ==
                         other.counters_[cls].size(),
                     "cannot merge banks with different chunk counts");
        for (std::size_t ch = 0; ch < counters_[cls].size(); ++ch)
            counters_[cls][ch].mergeFrom(other.counters_[cls][ch]);
    }
}

const ChunkCounters &
CounterBank::at(std::size_t cls, std::size_t chunk) const
{
    LOOKHD_CHECK_BOUNDS(cls, counters_.size());
    LOOKHD_CHECK_BOUNDS(chunk, counters_[cls].size());
    return counters_[cls][chunk];
}

CounterTrainer::CounterTrainer(const LookupEncoder &encoder,
                               CounterTrainerConfig config)
    : encoder_(encoder), config_(config)
{
}

CounterBank
CounterTrainer::countDataset(const data::Dataset &train) const
{
    LOOKHD_SPAN("lookhd.count", "train");
    LOOKHD_COUNT_ADD("lookhd.count.observations", train.size());
    const std::size_t n = train.size();
    const std::size_t threads = std::min(
        par::resolveThreads(config_.threads),
        std::max<std::size_t>(n, 1));
    CounterBank bank(encoder_, train.numClasses(), config_);
    if (threads <= 1) {
        for (std::size_t i = 0; i < n; ++i) {
            const auto addresses =
                encoder_.chunkAddresses(train.row(i));
            bank.observe(train.label(i), addresses);
        }
    } else {
        // Shard the sample range: each shard counts into a private
        // bank, then the shards merge by exact integer addition -
        // bit-identical to the serial pass for every thread count.
        const std::size_t shardSize = (n + threads - 1) / threads;
        const std::size_t numShards = (n + shardSize - 1) / shardSize;
        std::vector<CounterBank> shards;
        shards.reserve(numShards);
        for (std::size_t s = 0; s < numShards; ++s)
            shards.emplace_back(encoder_, train.numClasses(), config_);
        par::ThreadPool pool(threads);
        pool.parallelFor(0, numShards, [&](std::size_t lo,
                                           std::size_t hi) {
            for (std::size_t s = lo; s < hi; ++s) {
                const std::size_t first = s * shardSize;
                const std::size_t last =
                    std::min(n, first + shardSize);
                for (std::size_t i = first; i < last; ++i) {
                    const auto addresses =
                        encoder_.chunkAddresses(train.row(i));
                    shards[s].observe(train.label(i), addresses);
                }
            }
        });
        for (const CounterBank &shard : shards)
            bank.mergeFrom(shard);
    }
#if LOOKHD_OBS_ENABLED
    // Coverage / sparsity of the counter arrays: how much of the
    // k x m x q^s address space the training set actually touched.
    // Sparse coverage is what makes the hash-map fallback viable.
    if (obs::enabled()) {
        double distinct = 0.0;
        double capacity = 0.0;
        for (std::size_t cls = 0; cls < bank.numClasses(); ++cls) {
            for (std::size_t ch = 0; ch < bank.numChunks(); ++ch) {
                distinct += static_cast<double>(
                    bank.at(cls, ch).distinct());
                capacity += static_cast<double>(
                    encoder_.tableFor(ch).addressSpaceSize());
            }
        }
        LOOKHD_COUNT_ADD("lookhd.count.distinct_addresses",
                         static_cast<std::uint64_t>(distinct));
        if (capacity > 0.0) {
            LOOKHD_GAUGE_SET("lookhd.count.coverage",
                             distinct / capacity);
            LOOKHD_GAUGE_SET("lookhd.count.sparsity",
                             1.0 - distinct / capacity);
        }
    }
#endif
    return bank;
}

hdc::ClassModel
CounterTrainer::finalize(const CounterBank &bank) const
{
    LOOKHD_SPAN("lookhd.finalize", "train");
    const std::size_t k = bank.numClasses();
    hdc::ClassModel model(encoder_.dim(), k);
    const std::size_t m = encoder_.chunks().numChunks();

    // Classes are independent and write disjoint hypervectors, so the
    // class loop parallelizes with no effect on results. Built into a
    // local vector (not via classHv()) so no shared model state is
    // touched from worker threads.
    std::vector<hdc::IntHv> classHvs(k, hdc::IntHv(encoder_.dim(), 0));
    const auto buildClasses = [&](std::size_t lo, std::size_t hi) {
        hdc::IntHv scratch;
        for (std::size_t cls = lo; cls < hi; ++cls) {
            hdc::IntHv &class_hv = classHvs[cls];
            for (std::size_t ch = 0; ch < m; ++ch) {
                // Weighted accumulation:
                // chunk_acc = sum count * Table[addr].
                hdc::IntHv chunk_acc(encoder_.dim(), 0);
                const ChunkLookupTable &table = encoder_.tableFor(ch);
                bank.at(cls, ch).forEach(
                    [&](Address addr, std::uint32_t cnt) {
                        const hdc::IntHv &row =
                            table.row(addr, scratch);
                        const auto w = static_cast<std::int32_t>(cnt);
                        for (std::size_t d = 0; d < chunk_acc.size();
                             ++d)
                            chunk_acc[d] += w * row[d];
                    });
                // Chunk aggregation: bind the position key and
                // accumulate.
                const hdc::BipolarHv &key =
                    encoder_.positionKeys().at(ch);
                hdc::kernels::addSignedI8(class_hv.data(),
                                          chunk_acc.data(),
                                          key.data(), class_hv.size());
            }
        }
    };
    const std::size_t threads =
        std::min(par::resolveThreads(config_.threads), k);
    if (threads <= 1) {
        buildClasses(0, k);
    } else {
        par::ThreadPool pool(threads);
        pool.parallelFor(0, k, buildClasses);
    }
    for (std::size_t cls = 0; cls < k; ++cls)
        model.classHv(cls) = std::move(classHvs[cls]);
    model.normalize();
    return model;
}

hdc::ClassModel
CounterTrainer::train(const data::Dataset &train) const
{
    LOOKHD_SPAN("lookhd.train", "train");
    return finalize(countDataset(train));
}

} // namespace lookhd
