#include "lookhd/counter_trainer.hpp"

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace lookhd {

ChunkCounters::ChunkCounters(Address space, Address dense_threshold)
    : space_(space)
{
    LOOKHD_CHECK(space != 0, "counter space must be nonzero");
    if (space <= dense_threshold)
        denseCounts_.assign(static_cast<std::size_t>(space), 0);
}

void
ChunkCounters::increment(Address addr)
{
    LOOKHD_CHECK_BOUNDS(addr, space_);
    if (!denseCounts_.empty())
        ++denseCounts_[static_cast<std::size_t>(addr)];
    else
        ++sparseCounts_[addr];
    ++total_;
}

std::uint32_t
ChunkCounters::count(Address addr) const
{
    LOOKHD_CHECK_BOUNDS(addr, space_);
    if (!denseCounts_.empty())
        return denseCounts_[static_cast<std::size_t>(addr)];
    const auto it = sparseCounts_.find(addr);
    return it == sparseCounts_.end() ? 0 : it->second;
}

std::size_t
ChunkCounters::distinct() const
{
    if (!denseCounts_.empty()) {
        std::size_t n = 0;
        for (auto c : denseCounts_)
            n += c > 0;
        return n;
    }
    return sparseCounts_.size();
}

void
ChunkCounters::forEach(
    const std::function<void(Address, std::uint32_t)> &fn) const
{
    if (!denseCounts_.empty()) {
        for (std::size_t a = 0; a < denseCounts_.size(); ++a) {
            if (denseCounts_[a] > 0)
                fn(static_cast<Address>(a), denseCounts_[a]);
        }
    } else {
        for (const auto &[addr, cnt] : sparseCounts_)
            fn(addr, cnt);
    }
}

CounterBank::CounterBank(const LookupEncoder &encoder,
                         std::size_t num_classes,
                         const CounterTrainerConfig &config)
{
    LOOKHD_CHECK(num_classes != 0, "counter bank needs classes");
    counters_.reserve(num_classes);
    for (std::size_t c = 0; c < num_classes; ++c) {
        std::vector<ChunkCounters> per_chunk;
        per_chunk.reserve(encoder.chunks().numChunks());
        for (std::size_t ch = 0; ch < encoder.chunks().numChunks(); ++ch) {
            per_chunk.emplace_back(
                encoder.tableFor(ch).addressSpaceSize(),
                config.denseCounterThreshold);
        }
        counters_.push_back(std::move(per_chunk));
    }
}

std::size_t
CounterBank::numChunks() const
{
    return counters_.empty() ? 0 : counters_.front().size();
}

void
CounterBank::observe(std::size_t label,
                     std::span<const Address> addresses)
{
    LOOKHD_CHECK_BOUNDS(label, counters_.size());
    auto &per_chunk = counters_[label];
    LOOKHD_CHECK(addresses.size() == per_chunk.size(),
                 "address count mismatch");
    for (std::size_t ch = 0; ch < addresses.size(); ++ch)
        per_chunk[ch].increment(addresses[ch]);
}

const ChunkCounters &
CounterBank::at(std::size_t cls, std::size_t chunk) const
{
    LOOKHD_CHECK_BOUNDS(cls, counters_.size());
    LOOKHD_CHECK_BOUNDS(chunk, counters_[cls].size());
    return counters_[cls][chunk];
}

CounterTrainer::CounterTrainer(const LookupEncoder &encoder,
                               CounterTrainerConfig config)
    : encoder_(encoder), config_(config)
{
}

CounterBank
CounterTrainer::countDataset(const data::Dataset &train) const
{
    LOOKHD_SPAN("lookhd.count", "train");
    LOOKHD_COUNT_ADD("lookhd.count.observations", train.size());
    CounterBank bank(encoder_, train.numClasses(), config_);
    for (std::size_t i = 0; i < train.size(); ++i) {
        const auto addresses = encoder_.chunkAddresses(train.row(i));
        bank.observe(train.label(i), addresses);
    }
#if LOOKHD_OBS_ENABLED
    // Coverage / sparsity of the counter arrays: how much of the
    // k x m x q^s address space the training set actually touched.
    // Sparse coverage is what makes the hash-map fallback viable.
    if (obs::enabled()) {
        double distinct = 0.0;
        double capacity = 0.0;
        for (std::size_t cls = 0; cls < bank.numClasses(); ++cls) {
            for (std::size_t ch = 0; ch < bank.numChunks(); ++ch) {
                distinct += static_cast<double>(
                    bank.at(cls, ch).distinct());
                capacity += static_cast<double>(
                    encoder_.tableFor(ch).addressSpaceSize());
            }
        }
        LOOKHD_COUNT_ADD("lookhd.count.distinct_addresses",
                         static_cast<std::uint64_t>(distinct));
        if (capacity > 0.0) {
            LOOKHD_GAUGE_SET("lookhd.count.coverage",
                             distinct / capacity);
            LOOKHD_GAUGE_SET("lookhd.count.sparsity",
                             1.0 - distinct / capacity);
        }
    }
#endif
    return bank;
}

hdc::ClassModel
CounterTrainer::finalize(const CounterBank &bank) const
{
    LOOKHD_SPAN("lookhd.finalize", "train");
    hdc::ClassModel model(encoder_.dim(), bank.numClasses());
    const std::size_t m = encoder_.chunks().numChunks();
    hdc::IntHv scratch;

    for (std::size_t cls = 0; cls < bank.numClasses(); ++cls) {
        hdc::IntHv &class_hv = model.classHv(cls);
        for (std::size_t ch = 0; ch < m; ++ch) {
            // Weighted accumulation: chunk_acc = sum count * Table[addr].
            hdc::IntHv chunk_acc(encoder_.dim(), 0);
            const ChunkLookupTable &table = encoder_.tableFor(ch);
            bank.at(cls, ch).forEach(
                [&](Address addr, std::uint32_t cnt) {
                    const hdc::IntHv &row = table.row(addr, scratch);
                    const auto w = static_cast<std::int32_t>(cnt);
                    for (std::size_t d = 0; d < chunk_acc.size(); ++d)
                        chunk_acc[d] += w * row[d];
                });
            // Chunk aggregation: bind the position key and accumulate.
            const hdc::BipolarHv &key = encoder_.positionKeys().at(ch);
            for (std::size_t d = 0; d < class_hv.size(); ++d)
                class_hv[d] += key[d] * chunk_acc[d];
        }
    }
    model.normalize();
    return model;
}

hdc::ClassModel
CounterTrainer::train(const data::Dataset &train) const
{
    LOOKHD_SPAN("lookhd.train", "train");
    return finalize(countDataset(train));
}

} // namespace lookhd
