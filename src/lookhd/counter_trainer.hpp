/**
 * @file
 * LookHD counter-based training (paper Sec. III-D, Fig. 6).
 *
 * Instead of encoding every data point and summing hypervectors,
 * LookHD keeps, per class and per chunk, a q^r-entry counter array
 * indexed by the chunk address, and just increments counters while
 * streaming the training set. At the end, each class hypervector is
 * produced once by the weighted accumulation
 *
 *   C_c = sum_chunks P_chunk * ( sum_addr count[c][chunk][addr]
 *                                          * Table[addr] )
 *
 * which is exactly equal to summing the per-point encodings but
 * performs the O(D) vector work once per *distinct* chunk pattern
 * instead of once per data point.
 *
 * Counters are dense arrays when q^r is small (the hardware register
 * file of Fig. 10) and hash maps otherwise, so experiments can sweep
 * configurations where no real table would fit.
 */

#ifndef LOOKHD_LOOKHD_COUNTER_TRAINER_HPP
#define LOOKHD_LOOKHD_COUNTER_TRAINER_HPP

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "data/dataset.hpp"
#include "hdc/model.hpp"
#include "lookhd/lookup_encoder.hpp"

namespace lookhd {

/** Occurrence counters for one chunk (one class). */
class ChunkCounters
{
  public:
    /**
     * @param space Address space q^s of the chunk.
     * @param dense_threshold Use a dense array when space <= this.
     */
    ChunkCounters(Address space, Address dense_threshold);

    /** Record one occurrence of @p addr. */
    void increment(Address addr);

    /** Record @p cnt occurrences of @p addr. */
    void add(Address addr, std::uint32_t cnt);

    /**
     * Fold @p other's counts into this. Count addition is exact and
     * commutative, so merging per-shard counters in any order yields
     * the same bank a serial pass would (the parallel-training
     * determinism guarantee). @pre same address space.
     */
    void mergeFrom(const ChunkCounters &other);

    /** Occurrences recorded for @p addr. */
    std::uint32_t count(Address addr) const;

    /** Number of distinct addresses observed. */
    std::size_t distinct() const;

    /** Total increments. */
    std::uint64_t total() const { return total_; }

    /** Visit every (address, count) pair with count > 0. */
    void forEach(
        const std::function<void(Address, std::uint32_t)> &fn) const;

    bool dense() const { return !denseCounts_.empty() || space_ == 0; }

  private:
    Address space_;
    std::vector<std::uint32_t> denseCounts_;
    std::unordered_map<Address, std::uint32_t> sparseCounts_;
    std::uint64_t total_ = 0;
};

/** Settings for counter-based training. */
struct CounterTrainerConfig
{
    /**
     * Dense counter arrays up to this many addresses per chunk.
     * Dense arrays mirror the hardware's register/BRAM counters but
     * cost k x m x q^r words, so beyond this bound (q^r > 4096, e.g.
     * q = 8 with r = 5) the trainer switches to hash maps, which hold
     * only the addresses actually observed.
     */
    Address denseCounterThreshold = Address{1} << 12;

    /**
     * Worker threads for counting and finalization. 1 = serial
     * (default), 0 = one per hardware thread. Any value produces
     * bit-identical models: counting shards the sample range into
     * per-thread counter banks merged by exact integer addition, and
     * finalization writes disjoint per-class hypervectors.
     */
    std::size_t threads = 1;
};

/** Counter state for the whole training set: [class][chunk]. */
class CounterBank
{
  public:
    CounterBank(const LookupEncoder &encoder, std::size_t num_classes,
                const CounterTrainerConfig &config);

    std::size_t numClasses() const { return counters_.size(); }
    std::size_t numChunks() const;

    /** Increment the counters of one data point's chunk addresses. */
    void observe(std::size_t label, std::span<const Address> addresses);

    /** Fold another bank of the same shape into this (exact). */
    void mergeFrom(const CounterBank &other);

    const ChunkCounters &at(std::size_t cls, std::size_t chunk) const;

  private:
    std::vector<std::vector<ChunkCounters>> counters_;
};

/** LookHD trainer: stream counters, then weighted accumulation. */
class CounterTrainer
{
  public:
    explicit CounterTrainer(const LookupEncoder &encoder,
                            CounterTrainerConfig config = {});

    /**
     * Full training pass: quantize + count every point, then produce
     * the class model by weighted accumulation. The result is
     * normalized and ready for inference.
     */
    hdc::ClassModel train(const data::Dataset &train) const;

    /** Build and fill the counter bank without finalizing. */
    CounterBank countDataset(const data::Dataset &train) const;

    /** Weighted accumulation (step E-F of Fig. 6). */
    hdc::ClassModel finalize(const CounterBank &bank) const;

    const LookupEncoder &encoder() const { return encoder_; }

  private:
    const LookupEncoder &encoder_;
    CounterTrainerConfig config_;
};

} // namespace lookhd

#endif // LOOKHD_LOOKHD_COUNTER_TRAINER_HPP
