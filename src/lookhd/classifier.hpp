/**
 * @file
 * High-level LookHD classifier: the library's main public API.
 *
 * Wires together the full pipeline of the paper - equalized
 * quantization, chunked lookup encoding, counter-based training, model
 * compression, and compressed-domain retraining - behind a
 * scikit-style fit/predict interface.
 *
 * @code
 *   lookhd::ClassifierConfig cfg;
 *   cfg.dim = 2000;
 *   cfg.quantLevels = 4;
 *   lookhd::Classifier clf(cfg);
 *   clf.fit(train);
 *   double acc = clf.evaluate(test);
 * @endcode
 */

#ifndef LOOKHD_LOOKHD_CLASSIFIER_HPP
#define LOOKHD_LOOKHD_CLASSIFIER_HPP

#include <memory>
#include <optional>

#include "data/dataset.hpp"
#include "data/metrics.hpp"
#include "hdc/trainer.hpp"
#include "lookhd/compressed_model.hpp"
#include "lookhd/counter_trainer.hpp"
#include "lookhd/quantized_inference.hpp"
#include "lookhd/retrainer.hpp"

namespace lookhd {

/** Which quantization policy fit() calibrates. */
enum class QuantizationKind
{
    kLinear,    ///< Equal-width bins (conventional HDC).
    kEqualized, ///< Quantile bins (the paper's proposal).
};

/** Full configuration of a LookHD classifier. */
struct ClassifierConfig
{
    /** Hypervector dimensionality D (paper default for results). */
    hdc::Dim dim = 2000;

    /** Quantization levels q. */
    std::size_t quantLevels = 4;

    /** Chunk size r. */
    std::size_t chunkSize = 5;

    QuantizationKind quantization = QuantizationKind::kEqualized;

    /**
     * Calibrate one quantizer per feature column instead of a single
     * global one. Needed when features live on heterogeneous scales;
     * the paper's normalized datasets use a global quantizer, which
     * stays the default.
     */
    bool perFeatureQuantization = false;

    hdc::LevelGen levelGen = hdc::LevelGen::kDistinctHalf;

    /**
     * Compress the trained model (Sec. IV). When false, inference and
     * retraining run on the uncompressed k-hypervector model (the
     * "exact mode" reference).
     */
    bool compressModel = true;

    /**
     * Compression options. Defaults to the paper's "exact mode":
     * at most 12 classes per compressed hypervector (Sec. VI-G),
     * which keeps compression loss-free; set maxClassesPerGroup = 0
     * to force a single hypervector regardless of k (Fig. 15's
     * aggressive mode).
     */
    CompressionConfig compression{.decorrelate = true,
                                  .maxClassesPerGroup = 12,
                                  .keepReference = false,
                                  .scaleScores = false};

    /** Retraining epochs after initial training (paper: ~10). */
    std::size_t retrainEpochs = 10;

    RetrainOptions retrain;

    LookupEncoderConfig encoder;

    CounterTrainerConfig counters;

    /** Seed controlling all hypervector generation. */
    std::uint64_t seed = 42;
};

/** Trained LookHD classifier. */
class Classifier
{
  public:
    explicit Classifier(ClassifierConfig config = {});

    /**
     * Rebuild a fitted classifier from deserialized parts; used by
     * serialize.hpp. Exactly one quantization source (quantizer or
     * bank) matching config.perFeatureQuantization, and at least one
     * of model / compressed, must be provided.
     */
    static Classifier
    restore(ClassifierConfig config,
            std::shared_ptr<const hdc::LevelMemory> levels,
            std::shared_ptr<const quant::Quantizer> quantizer,
            std::shared_ptr<const quant::QuantizerBank> bank,
            std::unique_ptr<LookupEncoder> encoder,
            std::optional<hdc::ClassModel> model,
            std::optional<CompressedModel> compressed,
            std::vector<double> retrain_history);

    const ClassifierConfig &config() const { return config_; }

    /**
     * Train on @p train: calibrate the quantizer, build the level
     * memory and lookup encoder, counter-train the class model, then
     * (optionally) compress and retrain.
     */
    void fit(const data::Dataset &train);

    /** Whether fit() has completed. */
    bool fitted() const { return encoder_ != nullptr; }

    /** Predicted class of a raw feature vector. @pre fitted(). */
    std::size_t predict(std::span<const double> features) const;

    /** Per-class scores of a raw feature vector. @pre fitted(). */
    std::vector<double> scores(std::span<const double> features) const;

    /**
     * Scores for a batch of feature rows through the batched
     * encode + similarity kernels: out[i] == scores(rows[i]) bit for
     * bit, for every @p threads (1 = inline, 0 = one per hardware
     * thread). @pre fitted().
     */
    std::vector<std::vector<double>>
    scoresBatch(std::span<const std::span<const double>> rows,
                std::size_t threads = 1) const;

    /**
     * Predicted classes for a batch of feature rows; identical labels
     * to calling predict() per row. @pre fitted().
     */
    std::vector<std::size_t>
    predictBatch(std::span<const std::span<const double>> rows,
                 std::size_t threads = 1) const;

    /** Accuracy on a labeled dataset. @pre fitted(). */
    double evaluate(const data::Dataset &test) const;

    /**
     * Full evaluation: confusion matrix with per-class
     * precision/recall/F1. @pre fitted().
     */
    data::ConfusionMatrix evaluateDetailed(
        const data::Dataset &test) const;

    /** Training accuracy before retraining and after each epoch. */
    const std::vector<double> &retrainHistory() const
    {
        return retrainHistory_;
    }

    /** Deployed model size in bytes. @pre fitted(). */
    std::size_t modelSizeBytes() const;

    // --- Quantized serving ---

    /**
     * Build (or rebuild) the int8 + binary serving forms from the
     * trained model (the compressed model when present, else the
     * normalized uncompressed one). @pre fitted().
     */
    void quantize();

    /** Whether quantized serving forms are attached. */
    bool hasQuantized() const { return quantized_ != nullptr; }

    /** The attached serving forms. @pre hasQuantized(). */
    const QuantizedServingModel &quantizedModel() const;

    /**
     * Attach restored serving forms (deserialization). Shapes must
     * match the classifier's dimensionality and class count.
     */
    void attachQuantized(std::shared_ptr<const QuantizedServingModel> q);

    /**
     * Select the arithmetic scores()/scoresBatch() serve with.
     * kInt8/kBinary build the quantized forms on demand when none
     * are attached yet. @pre fitted().
     */
    void setServingPrecision(Precision p);

    /** Currently selected serving arithmetic. */
    Precision servingPrecision() const { return precision_; }

    // --- Access to the trained pieces (experiments, tests) ---

    const LookupEncoder &encoder() const;
    /** Uncompressed class model (as produced by counter training). */
    const hdc::ClassModel &uncompressedModel() const;
    /** Compressed model; @pre config().compressModel. */
    const CompressedModel &compressedModel() const;
    /** Global quantizer. @pre !config().perFeatureQuantization. */
    const quant::Quantizer &quantizer() const;
    /** Per-feature bank. @pre config().perFeatureQuantization. */
    const quant::QuantizerBank &quantizerBank() const;

  private:
    /** Quantized-path scores of one encoded query (batch of one). */
    std::vector<double>
    quantizedScores(const hdc::IntHv &query) const;

    ClassifierConfig config_;
    std::shared_ptr<const hdc::LevelMemory> levels_;
    std::shared_ptr<const quant::Quantizer> quantizer_;
    std::shared_ptr<const quant::QuantizerBank> bank_;
    std::unique_ptr<LookupEncoder> encoder_;
    std::optional<hdc::ClassModel> model_;
    std::optional<CompressedModel> compressed_;
    std::shared_ptr<const QuantizedServingModel> quantized_;
    Precision precision_ = Precision::kFloat64;
    std::vector<double> retrainHistory_;
};

} // namespace lookhd

#endif // LOOKHD_LOOKHD_CLASSIFIER_HPP
