#include "lookhd/lookup_table.hpp"

#include "util/check.hpp"

namespace lookhd {

ChunkLookupTable::ChunkLookupTable(
    std::shared_ptr<const hdc::LevelMemory> levels, std::size_t chunk_len,
    std::size_t materialize_budget_bytes)
    : levels_(std::move(levels)), chunkLen_(chunk_len)
{
    LOOKHD_CHECK(levels_, "lookup table needs a level memory");
    LOOKHD_CHECK(chunk_len != 0, "chunk length must be nonzero");
    space_ = addressSpace(levels_->levels(), chunkLen_);

    if (materialize_budget_bytes > 0 &&
        tableFits(levels_->levels(), chunkLen_, dim(),
                  materialize_budget_bytes)) {
        rows_.emplace();
        rows_->reserve(space_);
        for (Address a = 0; a < space_; ++a)
            rows_->push_back(encodeAddress(a));
    }
}

std::size_t
ChunkLookupTable::tableBytes() const
{
    return static_cast<std::size_t>(util::checkedMul(
        util::checkedMul(space_, dim()), sizeof(std::int32_t)));
}

const hdc::IntHv &
ChunkLookupTable::row(Address addr, hdc::IntHv &scratch) const
{
    LOOKHD_CHECK_BOUNDS(addr, space_);
    if (rows_)
        return (*rows_)[addr];
    scratch = encodeAddress(addr);
    return scratch;
}

hdc::IntHv
ChunkLookupTable::encodeAddress(Address addr) const
{
    std::vector<std::size_t> lvls(chunkLen_);
    decodeAddress(addr, levels_->levels(), lvls);
    hdc::IntHv acc(dim(), 0);
    for (std::size_t j = 0; j < chunkLen_; ++j)
        hdc::addRotated(acc, levels_->at(lvls[j]), j);
    return acc;
}

} // namespace lookhd
