#include "lookhd/quantized_inference.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "hdc/hypervector.hpp"
#include "hdc/kernels.hpp"
#include "util/check.hpp"

namespace lookhd {

namespace {

/** Quantize one float row to int8 with its own max-abs/127 scale. */
double
quantizeRowF64(const hdc::RealHv &row, std::int8_t *out)
{
    double maxabs = 0.0;
    for (const double v : row)
        maxabs = std::max(maxabs, std::abs(v));
    const double scale = maxabs > 0.0 ? maxabs / 127.0 : 1.0;
    for (std::size_t i = 0; i < row.size(); ++i) {
        const long long q = std::llround(row[i] / scale);
        out[i] = static_cast<std::int8_t>(
            std::clamp(q, -127LL, 127LL));
    }
    return scale;
}

/**
 * Same quantization for an int32 query row. Serving hot path: one
 * reciprocal multiply and an add-half truncation per element (the
 * branch-free, vectorizable spelling of round-half-away-from-zero;
 * llround is an unvectorizable libm call and dominated the int8
 * path's per-query cost). |v| * inv <= 127 by construction, so the
 * clamp only guards FP edge cases.
 */
double
quantizeRowI32(const hdc::IntHv &row, std::int8_t *out)
{
    std::int64_t maxabs = 0;
    for (const std::int32_t v : row)
        maxabs = std::max(maxabs, std::abs(
                                      static_cast<std::int64_t>(v)));
    const double scale =
        maxabs > 0 ? static_cast<double>(maxabs) / 127.0 : 1.0;
    const double inv = 1.0 / scale;
    for (std::size_t i = 0; i < row.size(); ++i) {
        const double r = static_cast<double>(row[i]) * inv;
        const int q = static_cast<int>(r + std::copysign(0.5, r));
        out[i] = static_cast<std::int8_t>(std::clamp(q, -127, 127));
    }
    return scale;
}

/**
 * Pack the signs of an int32 query word-wise (zero maps to +1,
 * matching hdc::sign()); the bit-by-bit PackedHv::set() loop this
 * replaces dominated the binary path's per-query cost.
 */
hdc::PackedHv
packQuerySigns(const hdc::IntHv &query)
{
    const std::size_t n = query.size();
    std::vector<std::uint64_t> words((n + 63) / 64, 0);
    for (std::size_t i = 0; i < n; ++i)
        words[i / 64] |= static_cast<std::uint64_t>(query[i] >= 0)
                         << (i % 64);
    return hdc::PackedHv(n, std::move(words));
}

/** Pack the signs of a float row (zero maps to +1, like sign()). */
hdc::PackedHv
packSigns(const hdc::RealHv &row)
{
    hdc::PackedHv packed(row.size());
    for (std::size_t i = 0; i < row.size(); ++i)
        packed.set(i, row[i] >= 0.0);
    return packed;
}

/** Build both serving forms from the effective float class rows. */
QuantizedServingModel
fromRows(hdc::Dim dim, const std::vector<hdc::RealHv> &rows)
{
    const std::size_t k = rows.size();
    std::vector<std::int8_t> i8(k * dim);
    std::vector<double> scales(k);
    std::vector<hdc::PackedHv> binary;
    binary.reserve(k);
    for (std::size_t c = 0; c < k; ++c) {
        scales[c] = quantizeRowF64(rows[c], i8.data() + c * dim);
        binary.push_back(packSigns(rows[c]));
    }
    return QuantizedServingModel(dim, std::move(i8), std::move(scales),
                          std::move(binary));
}

} // namespace

const char *
precisionName(Precision p)
{
    switch (p) {
    case Precision::kFloat64:
        return "float64";
    case Precision::kInt8:
        return "int8";
    case Precision::kBinary:
        return "binary";
    }
    return "unknown";
}

std::optional<Precision>
precisionFromName(std::string_view name)
{
    if (name == "float64")
        return Precision::kFloat64;
    if (name == "int8")
        return Precision::kInt8;
    if (name == "binary")
        return Precision::kBinary;
    return std::nullopt;
}

QuantizedServingModel::QuantizedServingModel(hdc::Dim dim,
                               std::vector<std::int8_t> rows,
                               std::vector<double> scales,
                               std::vector<hdc::PackedHv> binary)
    : dim_(dim), rows_(std::move(rows)), scales_(std::move(scales)),
      binary_(std::move(binary))
{
    LOOKHD_CHECK(dim_ > 0, "quantized model dim must be nonzero");
    const std::size_t k = scales_.size();
    LOOKHD_CHECK(k > 0, "quantized model needs at least one class");
    LOOKHD_CHECK(rows_.size() == k * dim_,
                 "quantized row storage does not match k x dim");
    LOOKHD_CHECK(binary_.size() == k,
                 "quantized binary row count does not match classes");
    for (const hdc::PackedHv &row : binary_)
        LOOKHD_CHECK(row.dim() == dim_,
                     "quantized binary row dimensionality mismatch");
    for (const double s : scales_)
        LOOKHD_CHECK(std::isfinite(s) && s > 0.0,
                     "quantized scale must be positive and finite");
    for (const std::int8_t v : rows_)
        LOOKHD_CHECK(v != -128,
                     "quantized element outside [-127, 127]");
}

QuantizedServingModel
QuantizedServingModel::fromClassModel(const hdc::ClassModel &model)
{
    LOOKHD_CHECK(model.normalized(),
                 "quantization requires a normalized class model");
    return fromRows(model.dim(), model.normalizedClasses());
}

QuantizedServingModel
QuantizedServingModel::fromCompressedModel(const CompressedModel &model)
{
    const std::size_t k = model.numClasses();
    const hdc::Dim dim = model.dim();
    std::vector<hdc::RealHv> rows(k, hdc::RealHv(dim));
    for (std::size_t c = 0; c < k; ++c) {
        const hdc::RealHv &group = model.groupHv(model.groupOf(c));
        const hdc::BipolarHv &key = model.classKeys().at(c);
        const double norm = model.trackedNorm(c);
        const bool scaled =
            model.config().scaleScores && norm > 0.0;
        for (std::size_t i = 0; i < dim; ++i) {
            double v = group[i] * static_cast<double>(key[i]);
            if (scaled)
                v /= norm;
            rows[c][i] = v;
        }
    }
    return fromRows(dim, rows);
}

std::vector<double>
QuantizedServingModel::scoresBatchI8(const hdc::IntHv *const *queries,
                              std::size_t numQueries) const
{
    const std::size_t k = numClasses();
    std::vector<double> out(numQueries * k);
    if (numQueries == 0)
        return out;

    std::vector<std::int8_t> qstore(numQueries * dim_);
    std::vector<double> qscales(numQueries);
    std::vector<const std::int8_t *> qptrs(numQueries);
    for (std::size_t q = 0; q < numQueries; ++q) {
        const hdc::IntHv &query = *queries[q];
        LOOKHD_CHECK(query.size() == dim_,
                     "query dimensionality mismatch");
        qscales[q] =
            quantizeRowI32(query, qstore.data() + q * dim_);
        qptrs[q] = qstore.data() + q * dim_;
    }
    std::vector<const std::int8_t *> rptrs(k);
    for (std::size_t c = 0; c < k; ++c)
        rptrs[c] = rows_.data() + c * dim_;

    std::vector<std::int64_t> raw(numQueries * k);
    hdc::kernels::scoresBatchI8(qptrs.data(), numQueries,
                                rptrs.data(), k, dim_, raw.data());
    for (std::size_t q = 0; q < numQueries; ++q)
        for (std::size_t c = 0; c < k; ++c)
            out[q * k + c] = static_cast<double>(raw[q * k + c]) *
                             qscales[q] * scales_[c];
    return out;
}

std::vector<double>
QuantizedServingModel::scoresBatchBinary(const hdc::IntHv *const *queries,
                                  std::size_t numQueries) const
{
    const std::size_t k = numClasses();
    std::vector<double> out(numQueries * k);
    for (std::size_t q = 0; q < numQueries; ++q) {
        const hdc::IntHv &query = *queries[q];
        LOOKHD_CHECK(query.size() == dim_,
                     "query dimensionality mismatch");
        const hdc::PackedHv packed = packQuerySigns(query);
        for (std::size_t c = 0; c < k; ++c) {
            const std::size_t matches = hdc::kernels::matchCountWords(
                packed.data().data(), binary_[c].data().data(),
                packed.data().size(), dim_);
            out[q * k + c] = static_cast<double>(
                2 * static_cast<std::int64_t>(matches) -
                static_cast<std::int64_t>(dim_));
        }
    }
    return out;
}

} // namespace lookhd
