/**
 * @file
 * Codebook addressing (paper Sec. III-C, Fig. 5).
 *
 * Each quantized level gets a log2(q)-bit codebook; the concatenation
 * of a chunk's codebooks is a direct address into the memory holding
 * the pre-stored encoded chunk hypervectors. This replaces an
 * associative lookup with a plain memory access.
 *
 * For general q, the concatenation is equivalent to reading the level
 * sequence as a base-q number; when q is a power of two the base-q
 * digits coincide with bit fields, which is the hardware view.
 */

#ifndef LOOKHD_LOOKHD_CODEBOOK_HPP
#define LOOKHD_LOOKHD_CODEBOOK_HPP

#include <cstdint>
#include <span>

namespace lookhd {

/** Chunk address type. */
using Address = std::uint64_t;

/** Bits per codebook: ceil(log2(q)). @pre q >= 2. */
std::size_t codebookBits(std::size_t q);

/**
 * Address of a chunk's quantized levels: level[0] is the least
 * significant base-q digit. @pre every level < q, and q^levels.size()
 * fits in 64 bits.
 */
Address addressOf(std::span<const std::size_t> levels, std::size_t q);

/**
 * Bit-concatenation address used by the hardware when q is a power of
 * two: level[j] occupies bits [j*b, (j+1)*b) with b = log2(q).
 * Identical to addressOf() in that case.
 */
Address bitAddressOf(std::span<const std::size_t> levels, std::size_t q);

/** Decode an address back into level indices (inverse of addressOf). */
void decodeAddress(Address addr, std::size_t q,
                   std::span<std::size_t> levels_out);

/**
 * Number of distinct addresses for a chunk: q^r, computed with
 * util::checkedMulPow. @throws util::ContractViolation if it does not
 * fit in 64 bits.
 */
Address addressSpace(std::size_t q, std::size_t r);

/**
 * Whether a q^r-entry table of D int32 elements fits within
 * @p budget_bytes (used to pick materialized vs on-the-fly encoding).
 */
bool tableFits(std::size_t q, std::size_t r, std::size_t dim,
               std::size_t budget_bytes);

} // namespace lookhd

#endif // LOOKHD_LOOKHD_CODEBOOK_HPP
