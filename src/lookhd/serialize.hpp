/**
 * @file
 * Binary serialization of trained LookHD models.
 *
 * The deployment story of the paper is an embedded device that
 * receives a trained (compressed) model. This module writes and reads
 * everything inference needs - quantizer boundaries, level memory,
 * position keys, and either the compressed groups + class keys or the
 * uncompressed class hypervectors - in a small versioned, tagged
 * binary format. Loading reconstructs a ready-to-predict Classifier.
 *
 * The format is little-endian and uses fixed-width types throughout;
 * a magic word and version byte guard against foreign input.
 */

#ifndef LOOKHD_LOOKHD_SERIALIZE_HPP
#define LOOKHD_LOOKHD_SERIALIZE_HPP

#include <iosfwd>
#include <string>

#include "lookhd/classifier.hpp"

namespace lookhd {

/**
 * Write a fitted classifier to a binary stream.
 * @pre clf.fitted().
 * @throws std::runtime_error on stream failure.
 */
void saveClassifier(const Classifier &clf, std::ostream &out);

/**
 * Read a classifier back. The returned classifier is fitted and makes
 * the same predictions as the one saved.
 * @throws std::runtime_error on malformed input or stream failure.
 */
Classifier loadClassifier(std::istream &in);

/** Convenience file wrappers. */
void saveClassifierFile(const Classifier &clf, const std::string &path);
Classifier loadClassifierFile(const std::string &path);

} // namespace lookhd

#endif // LOOKHD_LOOKHD_SERIALIZE_HPP
