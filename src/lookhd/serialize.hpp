/**
 * @file
 * Binary serialization of trained LookHD models.
 *
 * The deployment story of the paper is an embedded device that
 * receives a trained (compressed) model. This module writes and reads
 * everything inference needs - quantizer boundaries, level memory,
 * position keys, and either the compressed groups + class keys or the
 * uncompressed class hypervectors - in a small versioned, tagged
 * binary format. Loading reconstructs a ready-to-predict Classifier.
 *
 * The format is little-endian and uses fixed-width types throughout;
 * a magic word and version byte guard against foreign input.
 */

#ifndef LOOKHD_LOOKHD_SERIALIZE_HPP
#define LOOKHD_LOOKHD_SERIALIZE_HPP

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "lookhd/classifier.hpp"

namespace lookhd {

/**
 * Thrown on malformed model input or stream failure. Derives from
 * std::runtime_error (unlike util::ContractViolation): a bad file is
 * an environmental condition the caller must handle, not a caller
 * bug.
 */
class SerializeError : public std::runtime_error
{
  public:
    explicit SerializeError(const std::string &message)
        : std::runtime_error("lookhd model file: " + message)
    {
    }
};

/**
 * Write a fitted classifier to a binary stream.
 * @pre clf.fitted() (util::ContractViolation otherwise).
 * @throws SerializeError on stream failure.
 */
void saveClassifier(const Classifier &clf, std::ostream &out);

/**
 * Read a classifier back. The returned classifier is fitted and makes
 * the same predictions as the one saved.
 *
 * Malformed input never crashes or silently truncates: a magic word
 * and version byte gate foreign files, every array length is bounded
 * before allocation, cross-field consistency (dimensions, level
 * counts, chunk shapes) is verified, and truncation is detected on
 * every read.
 *
 * @throws SerializeError on malformed input or stream failure.
 */
Classifier loadClassifier(std::istream &in);

/** Convenience file wrappers. */
void saveClassifierFile(const Classifier &clf, const std::string &path);
Classifier loadClassifierFile(const std::string &path);

} // namespace lookhd

#endif // LOOKHD_LOOKHD_SERIALIZE_HPP
