#include "lookhd/chunking.hpp"

#include <algorithm>
#include <stdexcept>

namespace lookhd {

ChunkSpec::ChunkSpec(std::size_t num_features, std::size_t chunk_size)
    : numFeatures_(num_features), chunkSize_(chunk_size)
{
    if (num_features == 0 || chunk_size == 0)
        throw std::invalid_argument("chunk spec arguments must be nonzero");
    numChunks_ = (num_features + chunk_size - 1) / chunk_size;
}

std::size_t
ChunkSpec::end(std::size_t c) const
{
    if (c >= numChunks_)
        throw std::out_of_range("chunk index");
    return std::min(numFeatures_, (c + 1) * chunkSize_);
}

} // namespace lookhd
