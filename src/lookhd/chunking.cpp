#include "lookhd/chunking.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace lookhd {

ChunkSpec::ChunkSpec(std::size_t num_features, std::size_t chunk_size)
    : numFeatures_(num_features), chunkSize_(chunk_size)
{
    LOOKHD_CHECK(num_features != 0 && chunk_size != 0,
                 "chunk spec arguments must be nonzero");
    numChunks_ = (num_features + chunk_size - 1) / chunk_size;
}

std::size_t
ChunkSpec::end(std::size_t c) const
{
    LOOKHD_CHECK_BOUNDS(c, numChunks_);
    return std::min(numFeatures_, (c + 1) * chunkSize_);
}

} // namespace lookhd
