#include "lookhd/classifier.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.hpp"
#include "par/thread_pool.hpp"
#include "util/check.hpp"

#include "hdc/similarity.hpp"
#include "quant/equalized_quantizer.hpp"
#include "quant/linear_quantizer.hpp"

namespace lookhd {

Classifier::Classifier(ClassifierConfig config)
    : config_(std::move(config))
{
    LOOKHD_CHECK(config_.dim > 0, "classifier dim must be nonzero");
    LOOKHD_CHECK(config_.quantLevels >= 2,
                 "classifier needs at least 2 quantization levels");
    LOOKHD_CHECK(config_.chunkSize > 0,
                 "classifier chunk size must be nonzero");
}

Classifier
Classifier::restore(ClassifierConfig config,
                    std::shared_ptr<const hdc::LevelMemory> levels,
                    std::shared_ptr<const quant::Quantizer> quantizer,
                    std::shared_ptr<const quant::QuantizerBank> bank,
                    std::unique_ptr<LookupEncoder> encoder,
                    std::optional<hdc::ClassModel> model,
                    std::optional<CompressedModel> compressed,
                    std::vector<double> retrain_history)
{
    LOOKHD_CHECK(levels && encoder, "restore needs levels and encoder");
    LOOKHD_CHECK(config.perFeatureQuantization ? bool(bank)
                                                : bool(quantizer),
                 "quantization source does not match configuration");
    LOOKHD_CHECK(model || compressed, "restore needs a model");

    Classifier clf(std::move(config));
    clf.levels_ = std::move(levels);
    clf.quantizer_ = std::move(quantizer);
    clf.bank_ = std::move(bank);
    clf.encoder_ = std::move(encoder);
    clf.model_ = std::move(model);
    if (clf.model_)
        clf.model_->normalize();
    clf.compressed_ = std::move(compressed);
    clf.retrainHistory_ = std::move(retrain_history);
    return clf;
}

void
Classifier::fit(const data::Dataset &train)
{
    LOOKHD_CHECK(!train.empty(), "cannot fit on an empty dataset");

    LOOKHD_SPAN("classifier.fit", "train");
    LOOKHD_COUNT_ADD("classifier.fit.calls", 1);
    LOOKHD_GAUGE_SET("classifier.config.dim", config_.dim);
    LOOKHD_GAUGE_SET("classifier.config.quant_levels",
                     config_.quantLevels);
    LOOKHD_GAUGE_SET("classifier.config.chunk_size", config_.chunkSize);
    LOOKHD_GAUGE_SET("classifier.fit.samples", train.size());

    util::Rng rng(config_.seed);
    util::Rng level_rng = rng.split();
    util::Rng encoder_rng = rng.split();
    util::Rng key_rng = rng.split();

    // 1. Quantizer calibration: one global quantizer over every
    // training value, or one per feature column.
    {
        LOOKHD_SPAN("classifier.fit.quantize", "train");
        quantizer_.reset();
        bank_.reset();
        if (config_.perFeatureQuantization) {
            auto bank = std::make_shared<quant::QuantizerBank>(
                config_.quantLevels,
                config_.quantization == QuantizationKind::kEqualized
                    ? quant::BankKind::kEqualized
                    : quant::BankKind::kLinear);
            bank->fit(train);
            bank_ = std::move(bank);
        } else {
            std::unique_ptr<quant::Quantizer> q;
            if (config_.quantization == QuantizationKind::kEqualized)
                q = std::make_unique<quant::EqualizedQuantizer>(
                    config_.quantLevels);
            else
                q = std::make_unique<quant::LinearQuantizer>(
                    config_.quantLevels);
            const auto values = train.allValues();
            q->fit(std::vector<double>(values.begin(), values.end()));
            quantizer_ = std::move(q);
        }
    }

    // 2. Item memories and the lookup encoder.
    {
        LOOKHD_SPAN("classifier.fit.build_encoder", "train");
        levels_ = std::make_shared<hdc::LevelMemory>(
            config_.dim, config_.quantLevels, level_rng,
            config_.levelGen);
        const ChunkSpec chunks(train.numFeatures(), config_.chunkSize);
        if (bank_) {
            encoder_ = std::make_unique<LookupEncoder>(
                levels_, bank_, chunks, encoder_rng, config_.encoder);
        } else {
            encoder_ = std::make_unique<LookupEncoder>(
                levels_, quantizer_, chunks, encoder_rng,
                config_.encoder);
        }
    }

    // 3. Counter-based initial training.
    {
        LOOKHD_SPAN("classifier.fit.count_train", "train");
        CounterTrainer trainer(*encoder_, config_.counters);
        model_.emplace(trainer.train(train));
    }

    retrainHistory_.clear();
    RetrainOptions opts = config_.retrain;
    opts.epochs = config_.retrainEpochs;

    if (config_.compressModel) {
        // 4. Compress, then retrain in the compressed domain.
        {
            LOOKHD_SPAN("classifier.fit.compress", "train");
            compressed_.emplace(*model_, key_rng, config_.compression);
        }
        LOOKHD_SPAN("classifier.fit.retrain", "retrain");
        Retrainer retrainer(*encoder_);
        const RetrainResult rr =
            retrainer.retrain(*compressed_, train, opts);
        retrainHistory_ = rr.accuracyHistory;
    } else {
        // 4'. Exact mode: perceptron retraining on the uncompressed
        // model with lookup-encoded queries.
        LOOKHD_SPAN("classifier.fit.retrain", "retrain");
        compressed_.reset();
        std::vector<hdc::IntHv> encoded;
        encoded.reserve(train.size());
        for (std::size_t i = 0; i < train.size(); ++i)
            encoded.push_back(encoder_->encode(train.row(i)));

        model_->normalize();
        retrainHistory_.push_back(hdc::evaluateEncoded(
            *model_, encoded, train.labels()));
        for (std::size_t epoch = 0; epoch < opts.epochs; ++epoch) {
            for (std::size_t i = 0; i < encoded.size(); ++i) {
                const std::size_t pred = model_->predict(encoded[i]);
                if (pred != train.label(i)) {
                    model_->update(train.label(i), pred, encoded[i]);
                    model_->normalize();
                }
            }
            retrainHistory_.push_back(hdc::evaluateEncoded(
                *model_, encoded, train.labels()));
        }
    }
}

std::size_t
Classifier::predict(std::span<const double> features) const
{
    return hdc::argmax(scores(features));
}

std::vector<double>
Classifier::scores(std::span<const double> features) const
{
    LOOKHD_CHECK(fitted(), "classifier not fitted");
    LOOKHD_SPAN("classifier.predict", "search");
    LOOKHD_COUNT_ADD("classifier.predict.calls", 1);
    const hdc::IntHv query = encoder_->encode(features);
    std::vector<double> out =
        precision_ != Precision::kFloat64
            ? quantizedScores(query)
            : (compressed_ ? compressed_->scores(query)
                           : model_->scores(query));
    LOOKHD_QUALITY_MARGIN("classifier.predict", out);
    return out;
}

std::vector<double>
Classifier::quantizedScores(const hdc::IntHv &query) const
{
    LOOKHD_CHECK(quantized_, "no quantized serving forms attached");
    const hdc::IntHv *q = &query;
    // A batch of one: the quantized batch kernels score each query
    // independently, so this is bit-identical to the batched path.
    return precision_ == Precision::kInt8
               ? quantized_->scoresBatchI8(&q, 1)
               : quantized_->scoresBatchBinary(&q, 1);
}

std::vector<std::vector<double>>
Classifier::scoresBatch(std::span<const std::span<const double>> rows,
                        std::size_t threads) const
{
    LOOKHD_CHECK(fitted(), "classifier not fitted");
    LOOKHD_SPAN("classifier.predict.batch", "search");
    LOOKHD_COUNT_ADD("classifier.predict.calls", rows.size());
    const std::size_t n = rows.size();
    const std::size_t k = compressed_ ? compressed_->numClasses()
                                      : model_->numClasses();
    std::vector<hdc::IntHv> encoded(n);
    std::vector<std::vector<double>> out(n);

    // Each chunk encodes its rows and scores them in one batch kernel
    // call. Per-row results never depend on the chunking (the batch
    // kernels share the single-query accumulation order), so any
    // thread count returns the bits predict()/scores() would.
    const auto worker = [&](std::size_t lo, std::size_t hi) {
        std::vector<const hdc::IntHv *> queries(hi - lo);
        for (std::size_t i = lo; i < hi; ++i) {
            encoded[i] = encoder_->encode(rows[i]);
            queries[i - lo] = &encoded[i];
        }
        const std::vector<double> flat =
            precision_ == Precision::kInt8
                ? quantized_->scoresBatchI8(queries.data(),
                                            queries.size())
            : precision_ == Precision::kBinary
                ? quantized_->scoresBatchBinary(queries.data(),
                                                queries.size())
            : compressed_
                ? compressed_->scoresBatch(queries.data(),
                                           queries.size())
                : model_->scoresBatch(queries.data(), queries.size());
        for (std::size_t i = lo; i < hi; ++i) {
            out[i].assign(flat.begin() +
                              static_cast<std::ptrdiff_t>((i - lo) * k),
                          flat.begin() +
                              static_cast<std::ptrdiff_t>(
                                  (i - lo + 1) * k));
            LOOKHD_QUALITY_MARGIN("classifier.predict", out[i]);
        }
    };

    const std::size_t resolved =
        std::min(par::resolveThreads(threads),
                 std::max<std::size_t>(n, 1));
    if (resolved <= 1) {
        worker(0, n);
    } else {
        par::ThreadPool pool(resolved);
        pool.parallelFor(0, n, worker);
    }
    return out;
}

std::vector<std::size_t>
Classifier::predictBatch(std::span<const std::span<const double>> rows,
                         std::size_t threads) const
{
    const std::vector<std::vector<double>> all =
        scoresBatch(rows, threads);
    std::vector<std::size_t> labels(all.size());
    for (std::size_t i = 0; i < all.size(); ++i)
        labels[i] = hdc::argmax(all[i]);
    return labels;
}

double
Classifier::evaluate(const data::Dataset &test) const
{
    LOOKHD_CHECK(!test.empty(), "empty test set");
    std::size_t correct = 0;
    for (std::size_t i = 0; i < test.size(); ++i) {
        const std::vector<double> s = scores(test.row(i));
        LOOKHD_QUALITY_OUTCOME("classifier.evaluate", test.label(i), s);
        correct += hdc::argmax(s) == test.label(i);
    }
    return static_cast<double>(correct) / static_cast<double>(test.size());
}

data::ConfusionMatrix
Classifier::evaluateDetailed(const data::Dataset &test) const
{
    LOOKHD_CHECK(!test.empty(), "empty test set");
    return data::confusionOf(
        test, [this](auto row) { return predict(row); });
}

std::size_t
Classifier::modelSizeBytes() const
{
    LOOKHD_CHECK(fitted(), "classifier not fitted");
    if (compressed_)
        return compressed_->sizeBytes();
    return model_->sizeBytes();
}

void
Classifier::quantize()
{
    LOOKHD_CHECK(fitted(), "classifier not fitted");
    // Quantize the uncompressed normalized prototypes whenever they
    // exist: sign-binarizing a key-bound compressed-group product
    // throws away the magnitude structure that cancels the other
    // grouped classes' interference, costing tens of accuracy
    // points, while the per-class prototypes quantize within the
    // 1% budget (gated by bench_quantized_predict). The compressed
    // fallback only serves models restored without prototypes.
    if (model_) {
        model_->normalize();
        quantized_ = std::make_shared<const QuantizedServingModel>(
            QuantizedServingModel::fromClassModel(*model_));
        return;
    }
    quantized_ = std::make_shared<const QuantizedServingModel>(
        QuantizedServingModel::fromCompressedModel(*compressed_));
}

const QuantizedServingModel &
Classifier::quantizedModel() const
{
    LOOKHD_CHECK(quantized_, "no quantized serving forms attached");
    return *quantized_;
}

void
Classifier::attachQuantized(std::shared_ptr<const QuantizedServingModel> q)
{
    LOOKHD_CHECK(fitted(), "classifier not fitted");
    LOOKHD_CHECK(q != nullptr, "cannot attach a null quantized model");
    LOOKHD_CHECK(q->dim() == config_.dim,
                 "quantized model dimensionality mismatch");
    const std::size_t k = compressed_ ? compressed_->numClasses()
                                      : model_->numClasses();
    LOOKHD_CHECK(q->numClasses() == k,
                 "quantized model class count mismatch");
    quantized_ = std::move(q);
}

void
Classifier::setServingPrecision(Precision p)
{
    LOOKHD_CHECK(fitted(), "classifier not fitted");
    if (p != Precision::kFloat64 && !quantized_)
        quantize();
    precision_ = p;
}

const LookupEncoder &
Classifier::encoder() const
{
    LOOKHD_CHECK(encoder_, "classifier not fitted");
    return *encoder_;
}

const hdc::ClassModel &
Classifier::uncompressedModel() const
{
    LOOKHD_CHECK(model_, "classifier not fitted");
    return *model_;
}

const CompressedModel &
Classifier::compressedModel() const
{
    LOOKHD_CHECK(compressed_, "no compressed model");
    return *compressed_;
}

const quant::Quantizer &
Classifier::quantizer() const
{
    LOOKHD_CHECK(quantizer_,
                 "classifier not fitted or uses a per-feature bank");
    return *quantizer_;
}

const quant::QuantizerBank &
Classifier::quantizerBank() const
{
    LOOKHD_CHECK(bank_, "classifier not fitted or uses a global quantizer");
    return *bank_;
}

} // namespace lookhd
