/**
 * @file
 * LookHD lookup-based encoder (paper Sec. III, Eqs. 2-3, Fig. 5).
 *
 * Pipeline per data point:
 *   1. quantize each feature to a level (codebook),
 *   2. concatenate each chunk's codebooks into a direct address,
 *   3. fetch the pre-stored encoded chunk hypervector,
 *   4. bind each chunk hypervector with its position key P_i and sum.
 *
 * The result is bit-exact with encoding each chunk through Eq. 2
 * directly - the lookup is pure computation reuse.
 */

#ifndef LOOKHD_LOOKHD_LOOKUP_ENCODER_HPP
#define LOOKHD_LOOKHD_LOOKUP_ENCODER_HPP

#include <memory>
#include <span>

#include "hdc/encoder.hpp"
#include "hdc/item_memory.hpp"
#include "lookhd/chunking.hpp"
#include "lookhd/lookup_table.hpp"
#include "quant/quantizer.hpp"
#include "quant/quantizer_bank.hpp"

namespace lookhd {

/** Tunables of the lookup encoder. */
struct LookupEncoderConfig
{
    /**
     * Memory budget for materializing dense chunk tables. Tables
     * beyond the budget fall back to on-the-fly row computation
     * (identical results, no reuse).
     */
    std::size_t materializeBudgetBytes = std::size_t{64} << 20;
};

/** Chunked, lookup-backed encoder with position-key aggregation. */
class LookupEncoder
{
  public:
    /**
     * @param levels Shared level memory (same alphabets as baseline).
     * @param quantizer Fitted quantizer, levels() == levels->levels().
     * @param chunks Chunking of the feature vector.
     * @param rng Source for the m position hypervectors P_1..P_m.
     */
    LookupEncoder(std::shared_ptr<const hdc::LevelMemory> levels,
                  std::shared_ptr<const quant::Quantizer> quantizer,
                  ChunkSpec chunks, util::Rng &rng,
                  LookupEncoderConfig config = {});

    /**
     * Per-feature quantization variant: each feature uses its own
     * fitted quantizer from @p bank (levels() must match the level
     * memory, numFeatures() must match the chunk spec).
     */
    LookupEncoder(std::shared_ptr<const hdc::LevelMemory> levels,
                  std::shared_ptr<const quant::QuantizerBank> bank,
                  ChunkSpec chunks, util::Rng &rng,
                  LookupEncoderConfig config = {});

    /**
     * Restore variants (deserialization): position keys are supplied
     * explicitly instead of generated. @pre positions.count() ==
     * chunks.numChunks() and positions.dim() == levels->dim().
     */
    LookupEncoder(std::shared_ptr<const hdc::LevelMemory> levels,
                  std::shared_ptr<const quant::Quantizer> quantizer,
                  ChunkSpec chunks, hdc::KeyMemory positions,
                  LookupEncoderConfig config = {});
    LookupEncoder(std::shared_ptr<const hdc::LevelMemory> levels,
                  std::shared_ptr<const quant::QuantizerBank> bank,
                  ChunkSpec chunks, hdc::KeyMemory positions,
                  LookupEncoderConfig config = {});

    hdc::Dim dim() const { return levels_->dim(); }
    const ChunkSpec &chunks() const { return chunks_; }
    std::size_t quantLevels() const { return levels_->levels(); }

    /** Quantize a raw feature vector into level indices. */
    std::vector<std::size_t>
    quantize(std::span<const double> features) const;

    /** Per-chunk direct addresses of a raw feature vector. */
    std::vector<Address>
    chunkAddresses(std::span<const double> features) const;

    /** Per-chunk addresses of pre-quantized levels. */
    std::vector<Address>
    chunkAddressesOfLevels(std::span<const std::size_t> levels) const;

    /** Full LookHD encoding (Eq. 3) of a raw feature vector. */
    hdc::IntHv encode(std::span<const double> features) const;

    /** Eq. 3 aggregation from per-chunk addresses. */
    hdc::IntHv
    encodeFromAddresses(std::span<const Address> addresses) const;

    /** The lookup table serving chunk @p c. */
    const ChunkLookupTable &tableFor(std::size_t c) const;

    /** Position hypervectors P_1..P_m. */
    const hdc::KeyMemory &positionKeys() const { return positions_; }

    const hdc::LevelMemory &levelMemory() const { return *levels_; }

    /** Whether this encoder quantizes per feature. */
    bool usesBank() const { return bank_ != nullptr; }

    /** The global quantizer. @pre !usesBank(). */
    const quant::Quantizer &quantizer() const;

    /** The per-feature bank. @pre usesBank(). */
    const quant::QuantizerBank &quantizerBank() const;

    /** Total bytes of all materialized tables. */
    std::size_t materializedBytes() const;

  private:
    /** Shared tail of both constructors. */
    void buildTables(const LookupEncoderConfig &config);

    std::shared_ptr<const hdc::LevelMemory> levels_;
    std::shared_ptr<const quant::Quantizer> quantizer_;
    std::shared_ptr<const quant::QuantizerBank> bank_;
    ChunkSpec chunks_;
    hdc::KeyMemory positions_;
    /** Table for full-size chunks (shared by all of them). */
    std::shared_ptr<ChunkLookupTable> fullTable_;
    /** Table for the trailing short chunk, if n % r != 0. */
    std::shared_ptr<ChunkLookupTable> tailTable_;
};

} // namespace lookhd

#endif // LOOKHD_LOOKHD_LOOKUP_ENCODER_HPP
