/**
 * @file
 * Quantized serving forms of a trained classifier.
 *
 * The paper's FPGA result comes from scoring low-bit class models
 * with integer/popcount arithmetic instead of float MACs. This
 * module derives exactly those forms from a trained model at save
 * (or explicit quantize()) time:
 *
 *  - int8: every effective float class row (normalized class
 *    hypervector, or key-bound compressed-group product) is scaled
 *    by its own max-abs/127 factor and rounded to int8; queries are
 *    quantized the same way per request. A score is then one exact
 *    dotI8I8 kernel call times the two scales.
 *  - binary: the sign of each effective row, packed 64 dims per
 *    word (the binary_model.* packing); a score is one popcount
 *    kernel call turned into the +-1 dot 2 * matches - D.
 *
 * Both forms are always materialized together (the pair costs
 * ~9 bits per dimension per class). Scoring is bit-identical across
 * kernel Impls because every kernel involved is exact integer
 * arithmetic; the only doubles appear in the final per-score scalar
 * multiply, which is identical on every path. Accuracy relative to
 * the float path is enforced by bench_quantized_predict's gated
 * accuracy-delta metrics, not assumed.
 */

#ifndef LOOKHD_LOOKHD_QUANTIZED_INFERENCE_HPP
#define LOOKHD_LOOKHD_QUANTIZED_INFERENCE_HPP

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "hdc/bitpack.hpp"
#include "hdc/model.hpp"
#include "lookhd/compressed_model.hpp"

namespace lookhd {

/** Arithmetic a classifier serves predictions with. */
enum class Precision
{
    kFloat64 = 0, ///< Double accumulation (the exact float path).
    kInt8 = 1,    ///< Per-row-scaled int8 rows, integer dot products.
    kBinary = 2,  ///< Sign-packed rows, popcount scoring.
};

/** Stable lowercase name ("float64", "int8", "binary"). */
const char *precisionName(Precision p);

/** Inverse of precisionName(); nullopt for unknown names. */
std::optional<Precision> precisionFromName(std::string_view name);

/**
 * The int8 + binary serving forms of one trained model's effective
 * class rows. Immutable after construction.
 */
class QuantizedServingModel
{
  public:
    /**
     * Assemble from explicit parts (deserialization).
     * @param dim Hypervector dimensionality (> 0).
     * @param rows k x dim int8 class rows, row-major; elements must
     *        lie in [-127, 127] (-128 is never produced by
     *        quantization and is rejected as corruption).
     * @param scales One positive finite scale per class.
     * @param binary One packed sign row of dimensionality dim per
     *        class.
     */
    QuantizedServingModel(hdc::Dim dim, std::vector<std::int8_t> rows,
                   std::vector<double> scales,
                   std::vector<hdc::PackedHv> binary);

    /**
     * Quantize a trained uncompressed model's normalized class rows.
     * @pre model.normalized().
     */
    static QuantizedServingModel fromClassModel(const hdc::ClassModel &model);

    /**
     * Quantize a compressed model: the effective row of class c is
     * key_c * group_{g(c)} (divided by the tracked norm when the
     * model scales scores), so int8 scoring reproduces the
     * compressed float scores up to quantization error. The binary
     * form of these rows is much lossier than fromClassModel()'s
     * (sign-binarization discards the magnitudes that cancel the
     * other grouped classes), so callers with prototypes available
     * should prefer fromClassModel(); see Classifier::quantize().
     */
    static QuantizedServingModel
    fromCompressedModel(const CompressedModel &model);

    hdc::Dim dim() const { return dim_; }
    std::size_t numClasses() const { return scales_.size(); }

    /** Flat k x dim int8 rows (serialization). */
    const std::vector<std::int8_t> &int8Rows() const { return rows_; }
    /** Per-class score scales (serialization). */
    const std::vector<double> &scales() const { return scales_; }
    /** Packed sign rows (serialization). */
    const std::vector<hdc::PackedHv> &binaryRows() const
    {
        return binary_;
    }

    /**
     * Int8-path scores of a batch of encoded queries, flat
     * out[q * numClasses() + c]. Each query is quantized with its
     * own max-abs/127 scale; results are bit-identical across kernel
     * Impls and to a batch of size one (exact integer dot, one
     * fixed-order scalar multiply per score).
     */
    std::vector<double>
    scoresBatchI8(const hdc::IntHv *const *queries,
                  std::size_t numQueries) const;

    /**
     * Binary-path scores: sign-binarize each query, popcount against
     * every packed row, report the +-1 dot 2 * matches - D as a
     * double. Same identity guarantees as scoresBatchI8().
     */
    std::vector<double>
    scoresBatchBinary(const hdc::IntHv *const *queries,
                      std::size_t numQueries) const;

  private:
    hdc::Dim dim_;
    std::vector<std::int8_t> rows_; ///< k x dim, row-major.
    std::vector<double> scales_;    ///< k per-class scales.
    std::vector<hdc::PackedHv> binary_; ///< k packed sign rows.
};

} // namespace lookhd

#endif // LOOKHD_LOOKHD_QUANTIZED_INFERENCE_HPP
