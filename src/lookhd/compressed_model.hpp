/**
 * @file
 * Compressed HDC class model (paper Sec. IV, Eq. 4, Fig. 7).
 *
 * Instead of k class hypervectors, LookHD stores their superposition
 * after binding each with a private random bipolar key:
 *
 *   C = P'_1 * C_1 + P'_2 * C_2 + ... + P'_k * C_k
 *
 * The score of class i for a query H is dot(H * P'_i, C): unbinding
 * with P'_i recovers dot(H, C_i) (the signal) plus cross-terms damped
 * by the near-orthogonality of random keys (the noise, Eq. 5).
 *
 * Two refinements from the paper are implemented:
 *  - decorrelation (Sec. IV-C): classes share a large common component
 *    that makes their cosines cluster near 1 (Fig. 8); removing the
 *    projection on the class average widens the score gaps so the
 *    compression noise stops flipping rankings;
 *  - grouping (Sec. VI-G): when k is large the noise grows, so classes
 *    can be partitioned into groups of at most G (paper: 12), one
 *    compressed hypervector per group, trading a little model size for
 *    exactness.
 *
 * Retraining support (Sec. IV-D) applies perceptron updates directly
 * in the compressed domain: C += P'_correct * H - P'_wrong * H. Since
 * individual class norms are no longer recoverable after mixing, the
 * model tracks per-class norm estimates from the update stream and the
 * recovered signal (see applyUpdate()).
 */

#ifndef LOOKHD_LOOKHD_COMPRESSED_MODEL_HPP
#define LOOKHD_LOOKHD_COMPRESSED_MODEL_HPP

#include <vector>

#include "hdc/item_memory.hpp"
#include "hdc/model.hpp"
#include "util/rng.hpp"

namespace lookhd {

/** Knobs of the model compression. */
struct CompressionConfig
{
    /** Remove the common component before compressing (Sec. IV-C). */
    bool decorrelate = true;

    /**
     * Maximum classes folded into one compressed hypervector;
     * 0 means all k in a single one. The paper recommends 12 for
     * loss-free compression.
     */
    std::size_t maxClassesPerGroup = 0;

    /**
     * Keep a copy of the (decorrelated, normalized) per-class
     * hypervectors so exactScores() can report the noise-free
     * reference. Costs the uncompressed model size; meant for
     * experiments and tests, not deployment.
     */
    bool keepReference = false;

    /**
     * Divide each recovered score by the tracked class-norm estimate,
     * reproducing the cosine ranking of the (pre-normalized)
     * uncompressed model. Off by default: with balanced training data
     * the class norms are close and the raw dot-product ranking
     * already matches, while during retraining the norm estimates are
     * refreshed from noisy recovered signals and the estimation error
     * can compound. Enable for strongly imbalanced class sizes when
     * retraining is off or short.
     */
    bool scaleScores = false;
};

/** Compute the decorrelated class hypervectors of Sec. IV-C. */
std::vector<hdc::RealHv> decorrelateClasses(const hdc::ClassModel &model);

/** The compressed model: one (or a few) hypervectors for all classes. */
class CompressedModel
{
  public:
    /**
     * Compress a trained model.
     *
     * @param model Trained (uncompressed) class model.
     * @param rng Source for the k class keys P'_1..P'_k.
     * @param config Compression options.
     */
    CompressedModel(const hdc::ClassModel &model, util::Rng &rng,
                    CompressionConfig config = {});

    /**
     * Restore a compressed model from its stored state
     * (deserialization). @p common_dir may be empty when the model
     * was built without decorrelation.
     * @pre groups/norms/keys shapes are mutually consistent.
     */
    CompressedModel(CompressionConfig config, hdc::KeyMemory keys,
                    std::vector<hdc::RealHv> groups,
                    std::vector<double> norms,
                    hdc::RealHv common_dir);

    hdc::Dim dim() const { return dim_; }
    std::size_t numClasses() const { return keys_.count(); }
    std::size_t numGroups() const { return groups_.size(); }
    const CompressionConfig &config() const { return config_; }

    /** Group index holding class @p cls. */
    std::size_t groupOf(std::size_t cls) const;

    /** The compressed hypervector of group @p g. */
    const hdc::RealHv &groupHv(std::size_t g) const
    {
        return groups_.at(g);
    }

    /** The class keys P'. */
    const hdc::KeyMemory &classKeys() const { return keys_; }

    /**
     * Recovered per-class scores of @p query: dot(query * P'_i, C_g),
     * optionally divided by the tracked class norm.
     */
    std::vector<double> scores(const hdc::IntHv &query) const;

    /**
     * Recovered scores for a batch of queries, out[q * numClasses()
     * + c]; bit-identical to per-query scores() (same kernel calls in
     * the same order), with the group-product scratch reused across
     * the batch.
     */
    std::vector<double> scoresBatch(const hdc::IntHv *const *queries,
                                    std::size_t numQueries) const;

    /** argmax of scores(). */
    std::size_t predict(const hdc::IntHv &query) const;

    /** Argmax per row of scoresBatch(); same labels as predict(). */
    std::vector<std::size_t>
    predictBatch(const hdc::IntHv *const *queries,
                 std::size_t numQueries) const;

    /**
     * Scores computed over only the first @p dims dimensions. Because
     * random hypervector dimensions are interchangeable, a prefix of
     * the dimensions gives an unbiased (noisier) estimate of the full
     * scores - the basis for progressive-precision inference.
     * @pre 0 < dims <= dim().
     */
    std::vector<double> scoresPrefix(const hdc::IntHv &query,
                                     std::size_t dims) const;

    /**
     * Progressive-precision prediction (Table III's reduced-D
     * observation turned into an early-exit policy): score the first
     * @p initial_dims dimensions; if the winner's margin over the
     * runner-up exceeds @p margin times the score scale, stop;
     * otherwise double the window and repeat until full precision.
     *
     * @param dims_used Out-parameter (optional): dimensions actually
     *        consumed.
     */
    std::size_t predictProgressive(const hdc::IntHv &query,
                                   std::size_t initial_dims,
                                   double margin,
                                   std::size_t *dims_used =
                                       nullptr) const;

    /**
     * Noise-free reference scores dot(query, C_i) against the stored
     * per-class hypervectors. @pre config().keepReference.
     */
    std::vector<double> exactScores(const hdc::IntHv &query) const;

    /**
     * Compressed-domain perceptron update (Sec. IV-D):
     *   C_g(correct) += scale * P'_correct * H
     *   C_g(wrong)   -= scale * P'_wrong   * H
     * and refresh the norm estimates of both classes from the signal
     * recovered before the update.
     */
    void applyUpdate(std::size_t correct, std::size_t wrong,
                     const hdc::IntHv &query, double scale);

    /**
     * Tracked norm estimate of class @p cls (exact at construction,
     * refreshed from recovered signals during retraining).
     */
    double trackedNorm(std::size_t cls) const
    {
        return norms_.at(cls);
    }

    /**
     * Model size in bytes: one float per dimension per group plus one
     * bit per dimension per class key. This is the quantity Fig. 15b
     * compares against k * D * 4 for the uncompressed model.
     */
    std::size_t sizeBytes() const;

    /**
     * Unit common-component direction removed by decorrelation;
     * empty when the model was built without it.
     */
    const hdc::RealHv &commonDirection() const { return commonDir_; }

  private:
    /** Score of a single class (no norm scaling). */
    double rawScore(std::size_t cls, const hdc::IntHv &query) const;

    /**
     * Kernel-backed score computation over the first @p dims
     * dimensions into out[numClasses()]; @p product is caller-owned
     * scratch of at least @p dims elements.
     */
    void scoresInto(const hdc::IntHv &query, std::size_t dims,
                    hdc::RealHv &product, double *out) const;

    /**
     * The update vector actually folded into the model for a query:
     * the raw query, minus its projection on the common direction
     * when the model was decorrelated (otherwise updates would
     * re-inject the very component decorrelation removed).
     */
    hdc::RealHv updateVector(const hdc::IntHv &query) const;

    hdc::Dim dim_;
    CompressionConfig config_;
    hdc::KeyMemory keys_;
    std::size_t groupSize_; ///< Classes per group (except maybe last).
    std::vector<hdc::RealHv> groups_;
    std::vector<double> norms_;
    /** Unit common-component direction iff decorrelate. */
    hdc::RealHv commonDir_;
    /** Per-class reference hypervectors iff keepReference. */
    std::vector<hdc::RealHv> reference_;
};

} // namespace lookhd

#endif // LOOKHD_LOOKHD_COMPRESSED_MODEL_HPP
