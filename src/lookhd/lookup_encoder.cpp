#include "lookhd/lookup_encoder.hpp"

#include <stdexcept>

#include "hdc/kernels.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"

namespace lookhd {

LookupEncoder::LookupEncoder(
    std::shared_ptr<const hdc::LevelMemory> levels,
    std::shared_ptr<const quant::Quantizer> quantizer, ChunkSpec chunks,
    util::Rng &rng, LookupEncoderConfig config)
    : levels_(std::move(levels)), quantizer_(std::move(quantizer)),
      chunks_(chunks),
      positions_(levels_ ? levels_->dim() : 0, chunks.numChunks(), rng)
{
    LOOKHD_CHECK(levels_ && quantizer_, "encoder needs levels and quantizer");
    LOOKHD_CHECK(quantizer_->fitted(), "quantizer must be fitted");
    LOOKHD_CHECK(quantizer_->levels() == levels_->levels(),
                 "quantizer levels do not match level memory");
    buildTables(config);
}

LookupEncoder::LookupEncoder(
    std::shared_ptr<const hdc::LevelMemory> levels,
    std::shared_ptr<const quant::QuantizerBank> bank, ChunkSpec chunks,
    util::Rng &rng, LookupEncoderConfig config)
    : levels_(std::move(levels)), bank_(std::move(bank)),
      chunks_(chunks),
      positions_(levels_ ? levels_->dim() : 0, chunks.numChunks(), rng)
{
    LOOKHD_CHECK(levels_ && bank_, "encoder needs levels and bank");
    LOOKHD_CHECK(bank_->fitted(), "quantizer bank must be fitted");
    LOOKHD_CHECK(bank_->levels() == levels_->levels(),
                 "bank levels do not match level memory");
    LOOKHD_CHECK(bank_->numFeatures() == chunks_.numFeatures(),
                 "bank feature count does not match chunk spec");
    buildTables(config);
}

LookupEncoder::LookupEncoder(
    std::shared_ptr<const hdc::LevelMemory> levels,
    std::shared_ptr<const quant::Quantizer> quantizer, ChunkSpec chunks,
    hdc::KeyMemory positions, LookupEncoderConfig config)
    : levels_(std::move(levels)), quantizer_(std::move(quantizer)),
      chunks_(chunks), positions_(std::move(positions))
{
    LOOKHD_CHECK(levels_ && quantizer_, "encoder needs levels and quantizer");
    LOOKHD_CHECK(quantizer_->fitted(), "quantizer must be fitted");
    LOOKHD_CHECK(quantizer_->levels() == levels_->levels(),
                 "quantizer levels do not match level memory");
    LOOKHD_CHECK(positions_.count() == chunks_.numChunks(),
                 "position key count does not match chunk count");
    LOOKHD_CHECK(positions_.dim() == levels_->dim(),
                 "position key dimensionality mismatch");
    buildTables(config);
}

LookupEncoder::LookupEncoder(
    std::shared_ptr<const hdc::LevelMemory> levels,
    std::shared_ptr<const quant::QuantizerBank> bank, ChunkSpec chunks,
    hdc::KeyMemory positions, LookupEncoderConfig config)
    : levels_(std::move(levels)), bank_(std::move(bank)),
      chunks_(chunks), positions_(std::move(positions))
{
    LOOKHD_CHECK(levels_ && bank_, "encoder needs levels and bank");
    LOOKHD_CHECK(bank_->fitted(), "quantizer bank must be fitted");
    LOOKHD_CHECK(bank_->levels() == levels_->levels(),
                 "bank levels do not match level memory");
    LOOKHD_CHECK(bank_->numFeatures() == chunks_.numFeatures(),
                 "bank feature count does not match chunk spec");
    LOOKHD_CHECK(positions_.count() == chunks_.numChunks(),
                 "position key count does not match chunk count");
    LOOKHD_CHECK(positions_.dim() == levels_->dim(),
                 "position key dimensionality mismatch");
    buildTables(config);
}

void
LookupEncoder::buildTables(const LookupEncoderConfig &config)
{
    const std::size_t full_len =
        std::min(chunks_.chunkSize(), chunks_.numFeatures());
    fullTable_ = std::make_shared<ChunkLookupTable>(
        levels_, full_len, config.materializeBudgetBytes);
    if (!chunks_.uniform()) {
        const std::size_t tail_len =
            chunks_.length(chunks_.numChunks() - 1);
        if (tail_len != full_len) {
            tailTable_ = std::make_shared<ChunkLookupTable>(
                levels_, tail_len, config.materializeBudgetBytes);
        }
    }
    LOOKHD_COUNT_ADD("lookhd.table.builds", 1);
    LOOKHD_GAUGE_SET("lookhd.table.address_space",
                     fullTable_->addressSpaceSize());
    LOOKHD_GAUGE_SET("lookhd.table.materialized_bytes",
                     materializedBytes());
}

std::vector<std::size_t>
LookupEncoder::quantize(std::span<const double> features) const
{
    LOOKHD_CHECK(features.size() == chunks_.numFeatures(),
                 "feature vector width mismatch");
    std::vector<std::size_t> out;
    if (bank_) {
        out = bank_->levelsOf(features);
    } else {
        out.resize(features.size());
        for (std::size_t i = 0; i < features.size(); ++i)
            out[i] = quantizer_->level(features[i]);
    }
#if LOOKHD_OBS_ENABLED
    // Saturation telemetry: how many values land in the edge levels
    // (0 and q-1). Under linear quantization, out-of-range test
    // values clamp to the edges; a high saturation fraction is the
    // failure mode equalized quantization avoids (Fig. 3/4).
    // Counted locally, then two atomic adds per call.
    if (obs::enabled() && levels_->levels() >= 2) {
        const std::size_t top = levels_->levels() - 1;
        std::size_t saturated = 0;
        for (const std::size_t lvl : out)
            saturated += lvl == 0 || lvl == top;
        LOOKHD_COUNT_ADD("quant.level.values", out.size());
        LOOKHD_COUNT_ADD("quant.level.saturated", saturated);
    }
#endif
    return out;
}

const quant::Quantizer &
LookupEncoder::quantizer() const
{
    LOOKHD_CHECK(quantizer_, "encoder uses a per-feature bank");
    return *quantizer_;
}

const quant::QuantizerBank &
LookupEncoder::quantizerBank() const
{
    LOOKHD_CHECK(bank_, "encoder uses a global quantizer");
    return *bank_;
}

std::vector<Address>
LookupEncoder::chunkAddresses(std::span<const double> features) const
{
    return chunkAddressesOfLevels(quantize(features));
}

std::vector<Address>
LookupEncoder::chunkAddressesOfLevels(
    std::span<const std::size_t> levels) const
{
    LOOKHD_CHECK(levels.size() == chunks_.numFeatures(),
                 "level vector width mismatch");
    std::vector<Address> out(chunks_.numChunks());
    for (std::size_t c = 0; c < chunks_.numChunks(); ++c) {
        out[c] = addressOf(
            levels.subspan(chunks_.begin(c), chunks_.length(c)),
            levels_->levels());
    }
    return out;
}

hdc::IntHv
LookupEncoder::encode(std::span<const double> features) const
{
    LOOKHD_SPAN("lookhd.encode", "encode");
    LOOKHD_COUNT_ADD("lookhd.encode.calls", 1);
    const auto addresses = chunkAddresses(features);
    return encodeFromAddresses(addresses);
}

hdc::IntHv
LookupEncoder::encodeFromAddresses(
    std::span<const Address> addresses) const
{
    LOOKHD_CHECK(addresses.size() == chunks_.numChunks(),
                 "address count mismatch");
    hdc::IntHv acc(dim(), 0);
    hdc::IntHv scratch;
    for (std::size_t c = 0; c < addresses.size(); ++c) {
        const hdc::IntHv &chunk_hv =
            tableFor(c).row(addresses[c], scratch);
        const hdc::BipolarHv &key = positions_.at(c);
        // acc += P_c * chunk_hv, fused to avoid a temporary.
        hdc::kernels::addSignedI8(acc.data(), chunk_hv.data(),
                                  key.data(), acc.size());
    }
    return acc;
}

const ChunkLookupTable &
LookupEncoder::tableFor(std::size_t c) const
{
    LOOKHD_CHECK_BOUNDS(c, chunks_.numChunks());
    if (tailTable_ && c == chunks_.numChunks() - 1)
        return *tailTable_;
    return *fullTable_;
}

std::size_t
LookupEncoder::materializedBytes() const
{
    std::size_t bytes = 0;
    if (fullTable_->materialized())
        bytes += fullTable_->tableBytes();
    if (tailTable_ && tailTable_->materialized())
        bytes += tailTable_->tableBytes();
    return bytes;
}

} // namespace lookhd
