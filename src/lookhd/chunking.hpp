/**
 * @file
 * Feature-vector chunking (paper Sec. III-A).
 *
 * LookHD splits the n-feature vector into m chunks of (up to) r
 * features each. Each chunk is encoded with the same shared encoding
 * module, then bound to a per-chunk position hypervector P_i and
 * summed (Eq. 3). Chunking is what shrinks the space of possible
 * encodings from q^n to q^r and makes lookup encoding feasible.
 */

#ifndef LOOKHD_LOOKHD_CHUNKING_HPP
#define LOOKHD_LOOKHD_CHUNKING_HPP

#include <cstddef>
#include <vector>

namespace lookhd {

/** Partition of n features into chunks of size r (last may be short). */
class ChunkSpec
{
  public:
    /**
     * @param num_features n. @pre > 0.
     * @param chunk_size r. @pre > 0.
     */
    ChunkSpec(std::size_t num_features, std::size_t chunk_size);

    std::size_t numFeatures() const { return numFeatures_; }
    std::size_t chunkSize() const { return chunkSize_; }

    /** Number of chunks m = ceil(n / r). */
    std::size_t numChunks() const { return numChunks_; }

    /** First feature index of chunk @p c. */
    std::size_t begin(std::size_t c) const { return c * chunkSize_; }

    /** One-past-last feature index of chunk @p c. */
    std::size_t end(std::size_t c) const;

    /** Number of features in chunk @p c (r except possibly the last). */
    std::size_t length(std::size_t c) const { return end(c) - begin(c); }

    /** Whether every chunk has exactly r features. */
    bool uniform() const { return numFeatures_ % chunkSize_ == 0; }

  private:
    std::size_t numFeatures_;
    std::size_t chunkSize_;
    std::size_t numChunks_;
};

} // namespace lookhd

#endif // LOOKHD_LOOKHD_CHUNKING_HPP
