#include "lookhd/compressed_model.hpp"

#include <cmath>

#include "obs/obs.hpp"
#include "util/check.hpp"

#include "hdc/kernels.hpp"
#include "hdc/similarity.hpp"

namespace lookhd {

std::vector<hdc::RealHv>
decorrelateClasses(const hdc::ClassModel &model)
{
    const std::size_t k = model.numClasses();
    const hdc::Dim d = model.dim();

    // Raw trained class hypervectors, as the paper's Sec. IV-C
    // operates on the trained model directly.
    std::vector<hdc::RealHv> classes;
    classes.reserve(k);
    for (std::size_t c = 0; c < k; ++c)
        classes.push_back(hdc::toReal(model.classHv(c)));

    hdc::RealHv average(d, 0.0);
    for (const auto &c : classes)
        for (std::size_t i = 0; i < d; ++i)
            average[i] += c[i] / static_cast<double>(k);

    // Remove each class's component along the common direction:
    // C'_i = C_i - a_hat * <C_i, a_hat>. The paper writes this as
    // C_i - C_ave * delta(C_i, C_ave); the projection form makes every
    // residual exactly orthogonal to C_ave, so the (large, class-
    // independent) common component of a query contributes zero to
    // every score instead of a per-class bias.
    const hdc::RealHv direction = hdc::normalized(average);
    double removed_energy = 0.0;
    double total_energy = 0.0;
    for (auto &c : classes) {
        const double proj = hdc::dot(c, direction);
        removed_energy += proj * proj;
        total_energy += hdc::dot(c, c);
        for (std::size_t i = 0; i < d; ++i)
            c[i] -= direction[i] * proj;
    }
    // Fraction of total class energy living in the common direction -
    // the per-class bias Sec. IV-C removes. Near-zero means
    // decorrelation was a no-op; large values mean the raw classes
    // were dominated by the shared component.
    LOOKHD_COUNT_ADD("lookhd.decorrelate.calls", 1);
    if (total_energy > 0.0)
        LOOKHD_GAUGE_SET("lookhd.decorrelate.energy_frac",
                         removed_energy / total_energy);
    return classes;
}

CompressedModel::CompressedModel(const hdc::ClassModel &model,
                                 util::Rng &rng, CompressionConfig config)
    : dim_(model.dim()), config_(config),
      keys_(model.dim(), model.numClasses(), rng)
{
    const std::size_t k = model.numClasses();
    groupSize_ = config_.maxClassesPerGroup == 0
                     ? k
                     : std::min(config_.maxClassesPerGroup, k);
    const std::size_t num_groups = (k + groupSize_ - 1) / groupSize_;

    // Per-class hypervectors to fold in: the raw trained sums,
    // optionally decorrelated (Sec. IV-C). They enter the
    // superposition at their natural magnitudes; per-class norms are
    // recorded so scores() can reproduce the cosine ranking of the
    // uncompressed model.
    std::vector<hdc::RealHv> classes;
    if (config_.decorrelate) {
        classes = decorrelateClasses(model);
        // Remember the removed common direction so retraining updates
        // can stay out of it (see updateVector()).
        hdc::RealHv average(dim_, 0.0);
        for (std::size_t c = 0; c < k; ++c) {
            const hdc::IntHv &cls = model.classHv(c);
            for (std::size_t i = 0; i < dim_; ++i)
                average[i] +=
                    static_cast<double>(cls[i]) / static_cast<double>(k);
        }
        commonDir_ = hdc::normalized(average);
    } else {
        classes.reserve(k);
        for (std::size_t c = 0; c < k; ++c)
            classes.push_back(hdc::toReal(model.classHv(c)));
    }

    groups_.assign(num_groups, hdc::RealHv(dim_, 0.0));
    norms_.assign(k, 1.0);
    for (std::size_t cls = 0; cls < k; ++cls) {
        hdc::RealHv &group = groups_[cls / groupSize_];
        const hdc::BipolarHv &key = keys_.at(cls);
        for (std::size_t i = 0; i < dim_; ++i)
            group[i] += key[i] * classes[cls][i];
        norms_[cls] = std::max(hdc::norm(classes[cls]), 1e-12);
    }

    if (config_.keepReference)
        reference_ = std::move(classes);
}

CompressedModel::CompressedModel(CompressionConfig config,
                                 hdc::KeyMemory keys,
                                 std::vector<hdc::RealHv> groups,
                                 std::vector<double> norms,
                                 hdc::RealHv common_dir)
    : dim_(keys.dim()), config_(config), keys_(std::move(keys)),
      groups_(std::move(groups)), norms_(std::move(norms)),
      commonDir_(std::move(common_dir))
{
    const std::size_t k = keys_.count();
    LOOKHD_CHECK(k != 0 && !groups_.empty(),
                 "restored model must be nonempty");
    groupSize_ = config_.maxClassesPerGroup == 0
                     ? k
                     : std::min(config_.maxClassesPerGroup, k);
    LOOKHD_CHECK(groups_.size() == (k + groupSize_ - 1) / groupSize_,
                 "group count mismatch");
    LOOKHD_CHECK(norms_.size() == k, "norm count mismatch");
    for (const auto &g : groups_) {
        LOOKHD_CHECK(g.size() == dim_, "group dimensionality mismatch");
    }
    LOOKHD_CHECK(!(!commonDir_.empty() && commonDir_.size() != dim_),
                 "common direction mismatch");
    LOOKHD_CHECK(!(config_.keepReference),
                 "restored models do not carry reference hypervectors");
}

std::size_t
CompressedModel::groupOf(std::size_t cls) const
{
    LOOKHD_CHECK_BOUNDS(cls, numClasses());
    return cls / groupSize_;
}

double
CompressedModel::rawScore(std::size_t cls, const hdc::IntHv &query) const
{
    const hdc::RealHv &group = groups_[cls / groupSize_];
    const hdc::BipolarHv &key = keys_.at(cls);
    double sum = 0.0;
    for (std::size_t i = 0; i < dim_; ++i)
        sum += static_cast<double>(query[i]) * key[i] * group[i];
    return sum;
}

void
CompressedModel::scoresInto(const hdc::IntHv &query, std::size_t dims,
                            hdc::RealHv &product, double *out) const
{
    // Form the element-wise product H * C_g once per group; each
    // class score is then only a sign-resolved accumulation with its
    // key - the multiplication-free unbinding the hardware exploits
    // (Sec. IV-B). Both steps run on the dispatched kernels.
    for (std::size_t g = 0; g < groups_.size(); ++g) {
        hdc::kernels::mulIntReal(query.data(), groups_[g].data(),
                                 product.data(), dims);
        const std::size_t first = g * groupSize_;
        const std::size_t last =
            std::min(first + groupSize_, numClasses());
        for (std::size_t c = first; c < last; ++c) {
            out[c] = hdc::kernels::dotRealI8(product.data(),
                                             keys_.at(c).data(), dims);
            if (config_.scaleScores && norms_[c] > 0.0)
                out[c] /= norms_[c];
        }
    }
}

std::vector<double>
CompressedModel::scores(const hdc::IntHv &query) const
{
    LOOKHD_SPAN("lookhd.search", "search");
    LOOKHD_CHECK(query.size() == dim_, "query dimensionality mismatch");
    std::vector<double> out(numClasses());
    hdc::RealHv product(dim_);
    scoresInto(query, dim_, product, out.data());
    return out;
}

std::vector<double>
CompressedModel::scoresBatch(const hdc::IntHv *const *queries,
                             std::size_t numQueries) const
{
    LOOKHD_SPAN("lookhd.search.batch", "search");
    const std::size_t k = numClasses();
    std::vector<double> out(numQueries * k);
    hdc::RealHv product(dim_);
    for (std::size_t q = 0; q < numQueries; ++q) {
        LOOKHD_CHECK(queries[q]->size() == dim_,
                     "query dimensionality mismatch");
        // Per query this is exactly scores(): identical kernel calls
        // in identical order, so batch == single bit for bit.
        scoresInto(*queries[q], dim_, product, out.data() + q * k);
    }
    return out;
}

std::size_t
CompressedModel::predict(const hdc::IntHv &query) const
{
    return hdc::argmax(scores(query));
}

std::vector<std::size_t>
CompressedModel::predictBatch(const hdc::IntHv *const *queries,
                              std::size_t numQueries) const
{
    const std::vector<double> all = scoresBatch(queries, numQueries);
    const std::size_t k = numClasses();
    std::vector<std::size_t> labels(numQueries);
    for (std::size_t q = 0; q < numQueries; ++q) {
        const double *row = all.data() + q * k;
        std::size_t best = 0;
        for (std::size_t c = 1; c < k; ++c) {
            if (row[c] > row[best])
                best = c;
        }
        labels[q] = best;
    }
    return labels;
}

std::vector<double>
CompressedModel::scoresPrefix(const hdc::IntHv &query,
                              std::size_t dims) const
{
    LOOKHD_CHECK(query.size() == dim_, "query dimensionality mismatch");
    LOOKHD_CHECK(dims != 0 && dims <= dim_, "prefix length out of range");
    std::vector<double> out(numClasses());
    hdc::RealHv product(dims);
    scoresInto(query, dims, product, out.data());
    return out;
}

std::size_t
CompressedModel::predictProgressive(const hdc::IntHv &query,
                                    std::size_t initial_dims,
                                    double margin,
                                    std::size_t *dims_used) const
{
    LOOKHD_CHECK(initial_dims != 0, "initial window must be nonzero");
    std::size_t dims = std::min(initial_dims, dim_);
    for (;;) {
        const std::vector<double> s = scoresPrefix(query, dims);
        const std::size_t best = hdc::argmax(s);
        if (dims >= dim_) {
            if (dims_used)
                *dims_used = dims;
            return best;
        }
        // Margin relative to the score scale (mean absolute score).
        double scale = 0.0;
        double runner_up = -1e300;
        for (std::size_t c = 0; c < s.size(); ++c) {
            scale += std::abs(s[c]);
            if (c != best)
                runner_up = std::max(runner_up, s[c]);
        }
        scale = std::max(scale / static_cast<double>(s.size()),
                         1e-12);
        if ((s[best] - runner_up) / scale >= margin) {
            if (dims_used)
                *dims_used = dims;
            return best;
        }
        dims = std::min(dim_, dims * 2);
    }
}

std::vector<double>
CompressedModel::exactScores(const hdc::IntHv &query) const
{
    LOOKHD_CHECK(config_.keepReference,
                 "reference not kept; set keepReference");
    std::vector<double> out(reference_.size());
    for (std::size_t c = 0; c < reference_.size(); ++c)
        out[c] = hdc::dot(query, reference_[c]);
    return out;
}

void
CompressedModel::applyUpdate(std::size_t correct, std::size_t wrong,
                             const hdc::IntHv &query, double scale)
{
    LOOKHD_CHECK(correct < numClasses() && wrong < numClasses(),
                 "class index");
    LOOKHD_CHECK(query.size() == dim_, "query dimensionality mismatch");
    if (correct == wrong)
        return;

    // Recover the current signals before the update mutates the
    // groups; they feed the norm-estimate refresh below.
    const double s_correct = rawScore(correct, query);
    const double s_wrong = rawScore(wrong, query);

    const hdc::RealHv u = updateVector(query);
    double u_norm2 = 0.0;
    for (double v : u)
        u_norm2 += v * v;

    hdc::RealHv &g_correct = groups_[correct / groupSize_];
    hdc::RealHv &g_wrong = groups_[wrong / groupSize_];
    const hdc::BipolarHv &k_correct = keys_.at(correct);
    const hdc::BipolarHv &k_wrong = keys_.at(wrong);
    for (std::size_t i = 0; i < dim_; ++i) {
        const double delta = scale * u[i];
        g_correct[i] += k_correct[i] * delta;
        g_wrong[i] -= k_wrong[i] * delta;
    }

    // ||C +- s*u||^2 = ||C||^2 +- 2 s <C,u> + s^2 ||u||^2. The stored
    // classes are (approximately) orthogonal to the common direction,
    // so <C,u> = <C,H>, approximated by the recovered (noisy) signal.
    auto refresh = [&](std::size_t cls, double signal, double sgn) {
        const double n2 = norms_[cls] * norms_[cls] +
                          sgn * 2.0 * scale * signal +
                          scale * scale * u_norm2;
        norms_[cls] = std::sqrt(std::max(n2, 1e-12));
    };
    refresh(correct, s_correct, +1.0);
    refresh(wrong, s_wrong, -1.0);

    if (config_.keepReference) {
        for (std::size_t i = 0; i < dim_; ++i) {
            const double delta = scale * u[i];
            reference_[correct][i] += delta;
            reference_[wrong][i] -= delta;
        }
    }
}

hdc::RealHv
CompressedModel::updateVector(const hdc::IntHv &query) const
{
    hdc::RealHv u = hdc::toReal(query);
    if (!commonDir_.empty()) {
        double proj = 0.0;
        for (std::size_t i = 0; i < dim_; ++i)
            proj += u[i] * commonDir_[i];
        for (std::size_t i = 0; i < dim_; ++i)
            u[i] -= proj * commonDir_[i];
    }
    return u;
}

std::size_t
CompressedModel::sizeBytes() const
{
    const std::size_t group_bytes =
        numGroups() * dim_ * sizeof(float);
    const std::size_t key_bytes = (numClasses() * dim_ + 7) / 8;
    return group_bytes + key_bytes;
}

} // namespace lookhd
