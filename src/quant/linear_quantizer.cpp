#include "quant/linear_quantizer.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace lookhd::quant {

LinearQuantizer::LinearQuantizer(std::size_t levels)
    : levels_(levels)
{
    LOOKHD_CHECK(levels >= 2, "quantizer needs at least 2 levels");
}

void
LinearQuantizer::fit(const std::vector<double> &sample)
{
    LOOKHD_CHECK(!sample.empty(), "cannot fit quantizer on empty sample");
    const auto [lo, hi] = std::minmax_element(sample.begin(), sample.end());
    min_ = *lo;
    max_ = *hi;
    fitted_ = true;
    recordFitTelemetry(*this, sample);
}

std::size_t
LinearQuantizer::level(double value) const
{
    LOOKHD_CHECK(fitted_, "quantizer not fitted");
    if (max_ == min_)
        return 0;
    const double t = (value - min_) / (max_ - min_);
    const auto bin = static_cast<long>(t * static_cast<double>(levels_));
    return static_cast<std::size_t>(
        std::clamp<long>(bin, 0, static_cast<long>(levels_) - 1));
}

std::vector<double>
LinearQuantizer::boundaries() const
{
    std::vector<double> out;
    out.reserve(levels_ - 1);
    const double width = (max_ - min_) / static_cast<double>(levels_);
    for (std::size_t i = 1; i < levels_; ++i)
        out.push_back(min_ + width * static_cast<double>(i));
    return out;
}

} // namespace lookhd::quant
