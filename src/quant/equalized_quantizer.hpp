/**
 * @file
 * Equalized (quantile) quantizer - the paper's proposed quantization
 * (Sec. III-B, Fig. 3b).
 */

#ifndef LOOKHD_QUANT_EQUALIZED_QUANTIZER_HPP
#define LOOKHD_QUANT_EQUALIZED_QUANTIZER_HPP

#include "quant/quantizer.hpp"

namespace lookhd::quant {

/**
 * Places the q-1 bin boundaries at the i/q empirical quantiles of the
 * fit sample, so each level captures (approximately) an equal number
 * of training feature values. Skewed feature distributions then use
 * all levels instead of crowding a few, which is what lets LookHD
 * reach peak accuracy with q = 2 or 4.
 */
class EqualizedQuantizer : public Quantizer
{
  public:
    /** @param levels Number of bins q. @pre levels >= 2. */
    explicit EqualizedQuantizer(std::size_t levels);

    void fit(const std::vector<double> &sample) override;
    std::size_t level(double value) const override;
    std::size_t levels() const override { return levels_; }
    std::vector<double> boundaries() const override { return bounds_; }
    bool fitted() const override { return fitted_; }

  private:
    std::size_t levels_;
    std::vector<double> bounds_;
    bool fitted_ = false;
};

} // namespace lookhd::quant

#endif // LOOKHD_QUANT_EQUALIZED_QUANTIZER_HPP
