/**
 * @file
 * Feature-value quantizers.
 *
 * HDC encoders do not consume raw feature values; each value is first
 * mapped to one of q discrete levels, and the level selects a level
 * hypervector. The paper contrasts two boundary-placement policies:
 *
 *  - linear: q equal-width bins over [f_min, f_max] (the conventional
 *    choice, Sec. II-A);
 *  - equalized: boundaries at empirical quantiles so every level
 *    receives the same share of the training values (Sec. III-B,
 *    Fig. 3) - the key enabler for small q in LookHD.
 */

#ifndef LOOKHD_QUANT_QUANTIZER_HPP
#define LOOKHD_QUANT_QUANTIZER_HPP

#include <cstddef>
#include <vector>

namespace lookhd::quant {

/** Maps real feature values to discrete levels in [0, q). */
class Quantizer
{
  public:
    virtual ~Quantizer() = default;

    /**
     * Calibrate boundaries from a sample of feature values.
     * @pre sample non-empty.
     */
    virtual void fit(const std::vector<double> &sample) = 0;

    /** Level index in [0, levels()) for a value. @pre fit() called. */
    virtual std::size_t level(double value) const = 0;

    /** Number of quantization levels q. */
    virtual std::size_t levels() const = 0;

    /**
     * The q-1 internal bin boundaries in ascending order. Values below
     * boundary 0 map to level 0; values at or above boundary i map to
     * level i+1 or higher.
     */
    virtual std::vector<double> boundaries() const = 0;

    /** Whether fit() has been called. */
    virtual bool fitted() const = 0;

    /** Quantize a whole feature vector. */
    std::vector<std::size_t>
    levelsOf(const std::vector<double> &values) const
    {
        std::vector<std::size_t> out(values.size());
        for (std::size_t i = 0; i < values.size(); ++i)
            out[i] = level(values[i]);
        return out;
    }
};

/**
 * Shared binary search over sorted boundaries: number of boundaries
 * strictly below or equal, i.e. the bin index of @p value.
 */
std::size_t binOf(const std::vector<double> &bounds, double value);

/**
 * Per-level occupancy of @p sample under a fitted quantizer: how
 * many sample values map to each level. The shape of this profile
 * is the paper's Fig. 3 argument - equalized quantization keeps it
 * flat where linear quantization concentrates mass in a few levels.
 */
std::vector<std::size_t> occupancy(const Quantizer &q,
                                   const std::vector<double> &sample);

/**
 * Normalized Shannon entropy of an occupancy profile in [0, 1]:
 * 1 means perfectly equalized levels, 0 means all mass in one level
 * (or fewer than 2 levels / an empty profile).
 */
double occupancyEntropy(const std::vector<std::size_t> &counts);

/**
 * Emit fit-time bin-occupancy telemetry for a freshly fitted
 * quantizer (quant.fit.* counters/gauges; see ARCHITECTURE.md's
 * quality-metric taxonomy). No-op when observability is compiled
 * out or disabled at runtime; quantizer fits call it at the end of
 * fit().
 */
void recordFitTelemetry(const Quantizer &q,
                        const std::vector<double> &sample);

} // namespace lookhd::quant

#endif // LOOKHD_QUANT_QUANTIZER_HPP
