#include "quant/equalized_quantizer.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace lookhd::quant {

EqualizedQuantizer::EqualizedQuantizer(std::size_t levels)
    : levels_(levels)
{
    LOOKHD_CHECK(levels >= 2, "quantizer needs at least 2 levels");
}

void
EqualizedQuantizer::fit(const std::vector<double> &sample)
{
    LOOKHD_CHECK(!sample.empty(), "cannot fit quantizer on empty sample");
    std::vector<double> sorted = sample;
    std::sort(sorted.begin(), sorted.end());

    bounds_.clear();
    bounds_.reserve(levels_ - 1);
    for (std::size_t i = 1; i < levels_; ++i) {
        // Boundary at the i/q quantile. Index into the sorted sample;
        // ties collapse bins, which level() handles naturally (the
        // emptied bin simply never fires).
        const std::size_t idx = std::min(
            sorted.size() - 1, i * sorted.size() / levels_);
        bounds_.push_back(sorted[idx]);
    }
    fitted_ = true;
    recordFitTelemetry(*this, sample);
}

std::size_t
EqualizedQuantizer::level(double value) const
{
    LOOKHD_CHECK(fitted_, "quantizer not fitted");
    return binOf(bounds_, value);
}

} // namespace lookhd::quant
