/**
 * @file
 * Per-feature quantizer bank.
 *
 * The paper calibrates one quantizer over the pooled feature values,
 * which works when all features share a range (its datasets are
 * normalized). Real sensor vectors often mix features with wildly
 * different scales; a bank fits an independent quantizer per feature
 * column so every feature uses all q levels. The bank plugs into
 * both encoders as a drop-in alternative to a global quantizer.
 */

#ifndef LOOKHD_QUANT_QUANTIZER_BANK_HPP
#define LOOKHD_QUANT_QUANTIZER_BANK_HPP

#include <memory>
#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "quant/quantizer.hpp"

namespace lookhd::quant {

/** Which quantizer kind the bank instantiates per feature. */
enum class BankKind
{
    kLinear,
    kEqualized,
};

/** One independent quantizer per feature column. */
class QuantizerBank
{
  public:
    /**
     * @param levels Number of levels q (shared by every feature).
     * @param kind Per-feature quantizer kind.
     */
    QuantizerBank(std::size_t levels, BankKind kind);

    /**
     * Restore a fitted bank from explicit per-feature boundaries
     * (deserialization). Every feature must carry levels - 1
     * boundaries.
     */
    static QuantizerBank
    fromBoundaries(std::size_t levels,
                   const std::vector<std::vector<double>> &bounds);

    /** Fit each feature's quantizer on its column of @p ds. */
    void fit(const data::Dataset &ds);

    /**
     * Fit from explicit columns: columns[f] is the sample for
     * feature f. @pre every column non-empty.
     */
    void fitColumns(const std::vector<std::vector<double>> &columns);

    std::size_t levels() const { return levels_; }
    std::size_t numFeatures() const { return quantizers_.size(); }
    bool fitted() const { return !quantizers_.empty(); }

    /** Level of @p value in feature @p feature's quantizer. */
    std::size_t level(std::size_t feature, double value) const;

    /** Quantize a whole row. @pre row.size() == numFeatures(). */
    std::vector<std::size_t> levelsOf(std::span<const double> row) const;

    /** The fitted quantizer of one feature. */
    const Quantizer &at(std::size_t feature) const;

  private:
    std::size_t levels_;
    BankKind kind_;
    std::vector<std::unique_ptr<Quantizer>> quantizers_;
};

} // namespace lookhd::quant

#endif // LOOKHD_QUANT_QUANTIZER_BANK_HPP
