/**
 * @file
 * Conventional equal-width ("linear") quantizer (paper Sec. II-A).
 */

#ifndef LOOKHD_QUANT_LINEAR_QUANTIZER_HPP
#define LOOKHD_QUANT_LINEAR_QUANTIZER_HPP

#include "quant/quantizer.hpp"

namespace lookhd::quant {

/**
 * Splits [f_min, f_max] observed during fit() into q equal-width bins.
 * Out-of-range values clamp to the extreme levels.
 */
class LinearQuantizer : public Quantizer
{
  public:
    /** @param levels Number of bins q. @pre levels >= 2. */
    explicit LinearQuantizer(std::size_t levels);

    void fit(const std::vector<double> &sample) override;
    std::size_t level(double value) const override;
    std::size_t levels() const override { return levels_; }
    std::vector<double> boundaries() const override;
    bool fitted() const override { return fitted_; }

    double fitMin() const { return min_; }
    double fitMax() const { return max_; }

  private:
    std::size_t levels_;
    double min_ = 0.0;
    double max_ = 0.0;
    bool fitted_ = false;
};

} // namespace lookhd::quant

#endif // LOOKHD_QUANT_LINEAR_QUANTIZER_HPP
