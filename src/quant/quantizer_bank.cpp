#include "quant/quantizer_bank.hpp"

#include "util/check.hpp"

#include "quant/boundary_quantizer.hpp"
#include "quant/equalized_quantizer.hpp"
#include "quant/linear_quantizer.hpp"

namespace lookhd::quant {

QuantizerBank::QuantizerBank(std::size_t levels, BankKind kind)
    : levels_(levels), kind_(kind)
{
    LOOKHD_CHECK(levels >= 2, "bank needs at least 2 levels");
}

QuantizerBank
QuantizerBank::fromBoundaries(
    std::size_t levels, const std::vector<std::vector<double>> &bounds)
{
    QuantizerBank bank(levels, BankKind::kEqualized);
    std::vector<std::unique_ptr<Quantizer>> restored;
    restored.reserve(bounds.size());
    for (const auto &b : bounds) {
        LOOKHD_CHECK(b.size() + 1 == levels, "boundary count mismatch");
        restored.push_back(std::make_unique<BoundaryQuantizer>(b));
    }
    LOOKHD_CHECK(!restored.empty(), "bank needs at least one feature");
    bank.quantizers_ = std::move(restored);
    return bank;
}

void
QuantizerBank::fit(const data::Dataset &ds)
{
    LOOKHD_CHECK(!ds.empty(), "cannot fit bank on empty dataset");
    std::vector<std::vector<double>> columns(ds.numFeatures());
    for (auto &col : columns)
        col.reserve(ds.size());
    for (std::size_t i = 0; i < ds.size(); ++i) {
        const auto row = ds.row(i);
        for (std::size_t f = 0; f < row.size(); ++f)
            columns[f].push_back(row[f]);
    }
    fitColumns(columns);
}

void
QuantizerBank::fitColumns(
    const std::vector<std::vector<double>> &columns)
{
    LOOKHD_CHECK(!columns.empty(), "bank needs at least one feature");
    std::vector<std::unique_ptr<Quantizer>> fitted;
    fitted.reserve(columns.size());
    for (const auto &col : columns) {
        std::unique_ptr<Quantizer> q;
        if (kind_ == BankKind::kEqualized)
            q = std::make_unique<EqualizedQuantizer>(levels_);
        else
            q = std::make_unique<LinearQuantizer>(levels_);
        q->fit(col);
        fitted.push_back(std::move(q));
    }
    quantizers_ = std::move(fitted);
}

std::size_t
QuantizerBank::level(std::size_t feature, double value) const
{
    return at(feature).level(value);
}

std::vector<std::size_t>
QuantizerBank::levelsOf(std::span<const double> row) const
{
    LOOKHD_CHECK(row.size() == numFeatures(), "row width mismatch");
    std::vector<std::size_t> out(row.size());
    for (std::size_t f = 0; f < row.size(); ++f)
        out[f] = quantizers_[f]->level(row[f]);
    return out;
}

const Quantizer &
QuantizerBank::at(std::size_t feature) const
{
    LOOKHD_CHECK(fitted(), "bank not fitted");
    LOOKHD_CHECK_BOUNDS(feature, quantizers_.size());
    return *quantizers_[feature];
}

} // namespace lookhd::quant
