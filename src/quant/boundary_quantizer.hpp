/**
 * @file
 * Quantizer defined directly by its boundaries.
 *
 * Any fitted quantizer is fully described by its bin boundaries;
 * serialization stores those and restores a BoundaryQuantizer, which
 * behaves identically at level() time regardless of which policy
 * originally placed the boundaries.
 */

#ifndef LOOKHD_QUANT_BOUNDARY_QUANTIZER_HPP
#define LOOKHD_QUANT_BOUNDARY_QUANTIZER_HPP

#include "quant/quantizer.hpp"

namespace lookhd::quant {

/** Pre-fitted quantizer carrying explicit boundaries. */
class BoundaryQuantizer : public Quantizer
{
  public:
    /**
     * @param bounds Ascending internal boundaries; levels() is
     *        bounds.size() + 1. @pre at least one boundary.
     */
    explicit BoundaryQuantizer(std::vector<double> bounds);

    /** Refitting a fixed-boundary quantizer is an error. */
    void fit(const std::vector<double> &sample) override;

    std::size_t level(double value) const override;
    std::size_t levels() const override { return bounds_.size() + 1; }
    std::vector<double> boundaries() const override { return bounds_; }
    bool fitted() const override { return true; }

  private:
    std::vector<double> bounds_;
};

} // namespace lookhd::quant

#endif // LOOKHD_QUANT_BOUNDARY_QUANTIZER_HPP
