#include "quant/boundary_quantizer.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/check.hpp"

namespace lookhd::quant {

BoundaryQuantizer::BoundaryQuantizer(std::vector<double> bounds)
    : bounds_(std::move(bounds))
{
    LOOKHD_CHECK(!bounds_.empty(), "boundary quantizer needs bounds");
    LOOKHD_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
                 "boundaries must be ascending");
}

void
BoundaryQuantizer::fit(const std::vector<double> &)
{
    LOOKHD_CHECK(false, "boundary quantizer is fixed; cannot refit");
}

std::size_t
BoundaryQuantizer::level(double value) const
{
    return binOf(bounds_, value);
}

} // namespace lookhd::quant
