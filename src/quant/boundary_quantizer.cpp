#include "quant/boundary_quantizer.hpp"

#include <algorithm>
#include <stdexcept>

namespace lookhd::quant {

BoundaryQuantizer::BoundaryQuantizer(std::vector<double> bounds)
    : bounds_(std::move(bounds))
{
    if (bounds_.empty())
        throw std::invalid_argument("boundary quantizer needs bounds");
    if (!std::is_sorted(bounds_.begin(), bounds_.end()))
        throw std::invalid_argument("boundaries must be ascending");
}

void
BoundaryQuantizer::fit(const std::vector<double> &)
{
    throw std::logic_error("boundary quantizer is fixed; cannot refit");
}

std::size_t
BoundaryQuantizer::level(double value) const
{
    return binOf(bounds_, value);
}

} // namespace lookhd::quant
