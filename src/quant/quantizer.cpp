#include "quant/quantizer.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"

namespace lookhd::quant {

std::size_t
binOf(const std::vector<double> &bounds, double value)
{
    return static_cast<std::size_t>(
        std::upper_bound(bounds.begin(), bounds.end(), value) -
        bounds.begin());
}

std::vector<std::size_t>
occupancy(const Quantizer &q, const std::vector<double> &sample)
{
    std::vector<std::size_t> counts(q.levels(), 0);
    for (const double v : sample)
        ++counts[q.level(v)];
    return counts;
}

double
occupancyEntropy(const std::vector<std::size_t> &counts)
{
    if (counts.size() < 2)
        return 0.0;
    std::size_t total = 0;
    for (const std::size_t c : counts)
        total += c;
    if (total == 0)
        return 0.0;
    double entropy = 0.0;
    for (const std::size_t c : counts) {
        if (c == 0)
            continue;
        const double p =
            static_cast<double>(c) / static_cast<double>(total);
        entropy -= p * std::log2(p);
    }
    return entropy / std::log2(static_cast<double>(counts.size()));
}

void
recordFitTelemetry(const Quantizer &q, const std::vector<double> &sample)
{
#if LOOKHD_OBS_ENABLED
    if (!obs::enabled())
        return;
    const std::vector<std::size_t> counts = occupancy(q, sample);
    std::size_t collapsed = 0;
    std::size_t peak = 0;
    for (const std::size_t c : counts) {
        if (c == 0)
            ++collapsed;
        peak = std::max(peak, c);
    }
    LOOKHD_COUNT_ADD("quant.fit.calls", 1);
    LOOKHD_COUNT_ADD("quant.fit.collapsed_bins", collapsed);
    LOOKHD_GAUGE_SET("quant.fit.occupancy_entropy",
                     occupancyEntropy(counts));
    if (!sample.empty())
        LOOKHD_GAUGE_SET("quant.fit.occupancy_peak_frac",
                         static_cast<double>(peak) /
                             static_cast<double>(sample.size()));
#else
    (void)q;
    (void)sample;
#endif
}

} // namespace lookhd::quant
