/**
 * @file
 * Minimal JSON *reader* for the serving wire protocol.
 *
 * obs/json.hpp writes JSON; this is its input-side twin, sized for
 * the newline-delimited request objects `lookhd_serve` accepts
 * ({"id":7,"features":[0.5,...]}): objects, arrays, strings with the
 * standard escapes, finite numbers, true/false/null. No streaming,
 * no comments, bounded nesting depth. Errors come back as a message
 * instead of an exception so a malformed request costs one error
 * response, not a throw on the hot path.
 */

#ifndef LOOKHD_SERVE_JSONIN_HPP
#define LOOKHD_SERVE_JSONIN_HPP

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace lookhd::serve {

/** Parsed JSON value (tree-owning). */
class JsonValue
{
  public:
    enum class Type
    {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };

    Type type = Type::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isNumber() const { return type == Type::kNumber; }
    bool isString() const { return type == Type::kString; }
    bool isArray() const { return type == Type::kArray; }
    bool isObject() const { return type == Type::kObject; }

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view key) const;
};

/**
 * Parse one complete JSON document. Trailing non-whitespace is an
 * error (requests are exactly one object per line).
 *
 * @param text The document.
 * @param error Set to a human-readable message on failure.
 * @return The value, or std::nullopt-like empty pointer on failure.
 */
std::unique_ptr<JsonValue> parseJson(std::string_view text,
                                     std::string &error);

} // namespace lookhd::serve

#endif // LOOKHD_SERVE_JSONIN_HPP
