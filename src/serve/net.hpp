/**
 * @file
 * Thin POSIX TCP wrappers for the serving layer.
 *
 * Just enough socket plumbing for lookhd_serve / lookhd_loadgen and
 * the in-process tests: an owning listener bound to 127.0.0.1 (port
 * 0 = kernel-assigned, read back via port()), an owning connected
 * stream with buffered line reads, and sendAll/shutdown helpers.
 * Errors surface as NetError (std::runtime_error) carrying errno
 * text. SIGPIPE is never raised (MSG_NOSIGNAL); a peer hangup is a
 * normal short read / failed send, which the server treats as the
 * client going away, not a fault.
 */

#ifndef LOOKHD_SERVE_NET_HPP
#define LOOKHD_SERVE_NET_HPP

#include <cstdint>
#include <stdexcept>
#include <string>

namespace lookhd::serve {

/** Socket-layer failure with errno context. */
class NetError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Connected TCP stream with a line-read buffer. Move-only. */
class TcpStream
{
  public:
    TcpStream() = default;
    /** Takes ownership of a connected @p fd. */
    explicit TcpStream(int fd) : fd_(fd) {}
    ~TcpStream();

    TcpStream(TcpStream &&other) noexcept;
    TcpStream &operator=(TcpStream &&other) noexcept;
    TcpStream(const TcpStream &) = delete;
    TcpStream &operator=(const TcpStream &) = delete;

    /** Connect to @p host:@p port. @throws NetError. */
    static TcpStream connect(const std::string &host,
                             std::uint16_t port);

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /**
     * Read up to and including the next '\n' (which is stripped,
     * along with a preceding '\r'). @return false on clean EOF with
     * nothing buffered. @throws NetError on socket errors.
     * A final unterminated line before EOF is returned as-is.
     */
    bool readLine(std::string &line);

    /** Write the whole buffer. @return false if the peer went away. */
    bool sendAll(std::string_view data);

    /** Half/full close to unblock a reader; fd stays owned. */
    void shutdownBoth();

    /**
     * Close only the read side: unblocks readLine() with EOF while
     * still allowing queued responses to be written (the graceful
     * drain path).
     */
    void shutdownRead();

    void close();

  private:
    int fd_ = -1;
    std::string buffer_;
};

/** Listening TCP socket on 127.0.0.1. Move-only. */
class TcpListener
{
  public:
    TcpListener() = default;
    ~TcpListener();

    TcpListener(TcpListener &&other) noexcept;
    TcpListener &operator=(TcpListener &&other) noexcept;
    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    /**
     * Bind and listen on 127.0.0.1:@p port (0 = ephemeral; the
     * chosen port is read back via port()). @throws NetError.
     */
    static TcpListener bind(std::uint16_t port);

    bool valid() const { return fd_ >= 0; }
    std::uint16_t port() const { return port_; }

    /**
     * Accept one connection. Blocks up to @p timeoutMs (-1 =
     * forever). @return an invalid stream on timeout or on listener
     * close/shutdown. @throws NetError on unexpected failures.
     */
    TcpStream accept(int timeoutMs = -1);

    /** Unblock pending accept()s and release the port. */
    void close();

  private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
};

} // namespace lookhd::serve

#endif // LOOKHD_SERVE_NET_HPP
