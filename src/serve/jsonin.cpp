#include "serve/jsonin.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace lookhd::serve {

namespace {

constexpr std::size_t kMaxDepth = 32;

/** Recursive-descent parser over a string_view cursor. */
class Parser
{
  public:
    Parser(std::string_view text, std::string &error)
        : text_(text), error_(error)
    {
    }

    bool
    parseDocument(JsonValue &out)
    {
        skipWhitespace();
        if (!parseValue(out, 0))
            return false;
        skipWhitespace();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const std::string &message)
    {
        if (error_.empty())
            error_ = message + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    consume(char expected)
    {
        if (pos_ < text_.size() && text_[pos_] == expected) {
            ++pos_;
            return true;
        }
        return fail(std::string("expected '") + expected + "'");
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail("bad literal");
        pos_ += word.size();
        return true;
    }

    bool
    parseValue(JsonValue &out, std::size_t depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWhitespace();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
        case '{':
            return parseObject(out, depth);
        case '[':
            return parseArray(out, depth);
        case '"':
            out.type = JsonValue::Type::kString;
            return parseString(out.string);
        case 't':
            out.type = JsonValue::Type::kBool;
            out.boolean = true;
            return literal("true");
        case 'f':
            out.type = JsonValue::Type::kBool;
            out.boolean = false;
            return literal("false");
        case 'n':
            out.type = JsonValue::Type::kNull;
            return literal("null");
        default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue &out, std::size_t depth)
    {
        out.type = JsonValue::Type::kObject;
        if (!consume('{'))
            return false;
        skipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWhitespace();
            std::string key;
            if (!parseString(key))
                return false;
            skipWhitespace();
            if (!consume(':'))
                return false;
            JsonValue member;
            if (!parseValue(member, depth + 1))
                return false;
            out.object[key] = std::move(member);
            skipWhitespace();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            return consume('}');
        }
    }

    bool
    parseArray(JsonValue &out, std::size_t depth)
    {
        out.type = JsonValue::Type::kArray;
        if (!consume('['))
            return false;
        skipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue element;
            if (!parseValue(element, depth + 1))
                return false;
            out.array.push_back(std::move(element));
            skipWhitespace();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            return consume(']');
        }
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("dangling escape");
            const char esc = text_[pos_++];
            switch (esc) {
            case '"':
                out += '"';
                break;
            case '\\':
                out += '\\';
                break;
            case '/':
                out += '/';
                break;
            case 'b':
                out += '\b';
                break;
            case 'f':
                out += '\f';
                break;
            case 'n':
                out += '\n';
                break;
            case 'r':
                out += '\r';
                break;
            case 't':
                out += '\t';
                break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // UTF-8 encode the BMP code point (surrogate pairs
                // land as two replacement-style sequences; feature
                // vectors never need them).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
            }
            default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(
                    text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("expected a value");
        const std::string token(text_.substr(start, pos_ - start));
        char *end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size() || !std::isfinite(v)) {
            pos_ = start;
            return fail("bad number");
        }
        out.type = JsonValue::Type::kNumber;
        out.number = v;
        return true;
    }

    std::string_view text_;
    std::string &error_;
    std::size_t pos_ = 0;
};

} // namespace

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (type != Type::kObject)
        return nullptr;
    const auto it = object.find(std::string(key));
    return it == object.end() ? nullptr : &it->second;
}

std::unique_ptr<JsonValue>
parseJson(std::string_view text, std::string &error)
{
    error.clear();
    auto value = std::make_unique<JsonValue>();
    Parser parser(text, error);
    if (!parser.parseDocument(*value))
        return nullptr;
    return value;
}

} // namespace lookhd::serve
