#include "serve/net.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

namespace lookhd::serve {

namespace {

// strerror_r's two variants dispatch by return type: XSI returns int
// (0 = message in buf), GNU returns the message pointer (buf or a
// static string). The overload pair absorbs whichever the libc
// provides, since g++ defines _GNU_SOURCE and selects the GNU one.
[[maybe_unused]] const char *
strerrorResult(int rc, const char *buf)
{
    return rc == 0 ? buf : "unknown error";
}

[[maybe_unused]] const char *
strerrorResult(const char *message, const char * /*buf*/)
{
    return message;
}

[[noreturn]] void
throwErrno(const std::string &what)
{
    // strerror_r, not strerror: errors can surface on any of the
    // reader/worker/acceptor threads concurrently, and strerror's
    // shared static buffer is exactly what concurrency-mt-unsafe
    // flags.
    char buf[256];
    buf[0] = '\0';
    throw NetError(
        what + ": " +
        strerrorResult(strerror_r(errno, buf, sizeof(buf)), buf));
}

} // namespace

// --- TcpStream -------------------------------------------------------

TcpStream::~TcpStream()
{
    close();
}

TcpStream::TcpStream(TcpStream &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buffer_(std::move(other.buffer_))
{
}

TcpStream &
TcpStream::operator=(TcpStream &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        buffer_ = std::move(other.buffer_);
    }
    return *this;
}

TcpStream
TcpStream::connect(const std::string &host, std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throwErrno("socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        throw NetError("bad address: " + host);
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throwErrno("connect " + host + ":" + std::to_string(port));
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return TcpStream(fd);
}

bool
TcpStream::readLine(std::string &line)
{
    while (true) {
        const std::size_t newline = buffer_.find('\n');
        if (newline != std::string::npos) {
            line.assign(buffer_, 0, newline);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            buffer_.erase(0, newline + 1);
            return true;
        }
        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n > 0) {
            buffer_.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0) {
            if (buffer_.empty())
                return false;
            line = std::move(buffer_);
            buffer_.clear();
            return true;
        }
        if (errno == EINTR)
            continue;
        if (errno == ECONNRESET || errno == EBADF)
            return false; // peer (or our shutdown) tore it down
        throwErrno("recv");
    }
}

bool
TcpStream::sendAll(std::string_view data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n =
            ::send(fd_, data.data() + sent, data.size() - sent,
                   MSG_NOSIGNAL);
        if (n >= 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (errno == EINTR)
            continue;
        if (errno == EPIPE || errno == ECONNRESET || errno == EBADF)
            return false;
        throwErrno("send");
    }
    return true;
}

void
TcpStream::shutdownBoth()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

void
TcpStream::shutdownRead()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RD);
}

void
TcpStream::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

// --- TcpListener -----------------------------------------------------

TcpListener::~TcpListener()
{
    close();
}

TcpListener::TcpListener(TcpListener &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0))
{
}

TcpListener &
TcpListener::operator=(TcpListener &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        port_ = std::exchange(other.port_, 0);
    }
    return *this;
}

TcpListener
TcpListener::bind(std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throwErrno("socket");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throwErrno("bind 127.0.0.1:" + std::to_string(port));
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throwErrno("getsockname");
    }
    TcpListener listener;
    listener.fd_ = fd;
    listener.port_ = ntohs(addr.sin_port);
    return listener;
}

TcpStream
TcpListener::accept(int timeoutMs)
{
    while (true) {
        if (fd_ < 0)
            return TcpStream();
        pollfd pfd{fd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, timeoutMs);
        if (ready == 0)
            return TcpStream(); // timeout
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("poll");
        }
        const int conn = ::accept(fd_, nullptr, nullptr);
        if (conn >= 0) {
            const int one = 1;
            ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
            return TcpStream(conn);
        }
        if (errno == EINTR || errno == ECONNABORTED)
            continue;
        if (errno == EBADF || errno == EINVAL)
            return TcpStream(); // listener closed under us
        throwErrno("accept");
    }
}

void
TcpListener::close()
{
    if (fd_ >= 0) {
        // shutdown() first so a thread blocked in poll/accept wakes
        // with an error instead of waiting out its timeout.
        ::shutdown(fd_, SHUT_RDWR);
        ::close(fd_);
        fd_ = -1;
        port_ = 0;
    }
}

} // namespace lookhd::serve
