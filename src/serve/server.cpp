#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "hdc/kernels.hpp"
#include "hdc/similarity.hpp"
#include "obs/eventlog.hpp"
#include "par/thread_pool.hpp"
#include "obs/exposition.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/procstats.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "serve/jsonin.hpp"
#include "util/timer.hpp"

namespace lookhd::serve {

namespace {

/** Compact one-line span-rollup dump for watchdog-trip events. */
std::string
rollupDump(std::size_t maxSites = 8)
{
    std::vector<obs::SpanStats> rollup = obs::spanRollup();
    std::sort(rollup.begin(), rollup.end(),
              [](const obs::SpanStats &a, const obs::SpanStats &b) {
                  return a.totalNs > b.totalNs;
              });
    std::string out;
    for (std::size_t i = 0;
         i < rollup.size() && i < maxSites; ++i) {
        if (!out.empty())
            out += ' ';
        out += rollup[i].name + "=" +
               std::to_string(rollup[i].count) + "x/" +
               std::to_string(rollup[i].totalNs) + "ns";
    }
    return out.empty() ? "(no spans)" : out;
}

/**
 * Assemble one scrape-port HTTP/1.0 response. Every body is
 * point-in-time telemetry, hence the unconditional
 * Cache-Control: no-store. @p extraHeaders lines must be
 * CRLF-terminated.
 */
std::string
httpResponse(const std::string &status,
             const std::string &contentType, const std::string &body,
             const std::string &extraHeaders = {})
{
    std::string response = "HTTP/1.0 " + status + "\r\n";
    response += "Content-Type: " + contentType + "\r\n";
    response +=
        "Content-Length: " + std::to_string(body.size()) + "\r\n";
    response += "Cache-Control: no-store\r\n";
    response += extraHeaders;
    response += "Connection: close\r\n\r\n";
    response += body;
    return response;
}

} // namespace

/** Requests' echoed id: absent, numeric, or string. */
enum class IdKind
{
    kNone,
    kNumber,
    kString,
};

struct InferenceServer::Connection
{
    explicit Connection(TcpStream s) : stream(std::move(s)) {}

    /** Deliberately NOT guarded by writeMutex: stop() shuts the
     * stream down lock-free to unblock a reader mid-readLine, and
     * writers re-check `open` under the mutex before touching it. */
    TcpStream stream;
    util::Mutex writeMutex;
    std::atomic<bool> open{true};

    /** Serialize one response line; false once the peer went away. */
    bool
    writeLine(const std::string &body)
    {
        const util::MutexLock lock(writeMutex);
        if (!open.load(std::memory_order_relaxed))
            return false;
        if (!stream.sendAll(body) || !stream.sendAll("\n")) {
            open.store(false, std::memory_order_relaxed);
            return false;
        }
        return true;
    }
};

struct InferenceServer::Request
{
    std::shared_ptr<Connection> conn;
    IdKind idKind = IdKind::kNone;
    double idNumber = 0.0;
    std::string idString;
    std::vector<double> features;
    bool wantScores = false;
    std::uint64_t enqueueNs = 0;
    /** processNanoseconds() when a worker popped this request. */
    std::uint64_t popNs = 0;
    obs::RequestContext ctx;
};

struct InferenceServer::WorkerState
{
    /** processNanoseconds() when the current batch started; 0=idle. */
    std::atomic<std::uint64_t> busySinceNs{0};
    std::atomic<const char *> stage{"idle"};
    /** Monotonic per-worker batch number; lets the watchdog trip
     * once per stuck batch instead of once per poll. */
    std::atomic<std::uint64_t> batchSeq{0};
    std::uint64_t lastTrippedBatch = 0; // watchdog-thread private

    /** One in-flight request, published for /debug/inflight. */
    struct InflightEntry
    {
        std::string trace; // 32 hex chars, or "" when untraced
        std::string id;    // echoed request id as text
        std::uint64_t enqueueNs = 0;
    };

    /** The batch being scored; set at batch start, cleared at end. */
    util::Mutex inflightMutex;
    std::vector<InflightEntry> inflightBatch
        LOOKHD_GUARDED_BY(inflightMutex);
};

namespace {

void
writeId(obs::JsonWriter &w, IdKind kind, double number,
        const std::string &string)
{
    if (kind == IdKind::kNumber)
        w.kv("id", number);
    else if (kind == IdKind::kString)
        w.kv("id", string);
}

std::string
errorBody(IdKind kind, double number, const std::string &string,
          const obs::TraceId &trace, const std::string &message)
{
    obs::JsonWriter w;
    w.beginObject();
    writeId(w, kind, number, string);
    if (!trace.zero())
        w.kv("trace", obs::traceIdHex(trace));
    w.kv("error", message);
    w.endObject();
    return w.str();
}

/** The echoed request id as plain text ("" when absent). */
std::string
idText(IdKind kind, double number, const std::string &string)
{
    if (kind == IdKind::kString)
        return string;
    if (kind == IdKind::kNone)
        return {};
    char buf[32];
    if (number ==
            static_cast<double>(static_cast<long long>(number)) &&
        number > -1e15 && number < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(number));
    } else {
        std::snprintf(buf, sizeof(buf), "%g", number);
    }
    return buf;
}

/** Raw top1 - top2 score margin (0 with fewer than two classes). */
double
scoreMargin(const std::vector<double> &scores)
{
    if (scores.size() < 2)
        return 0.0;
    double top1 = scores[0];
    double top2 = scores[1];
    if (top2 > top1)
        std::swap(top1, top2);
    for (std::size_t i = 2; i < scores.size(); ++i) {
        if (scores[i] > top1) {
            top2 = top1;
            top1 = scores[i];
        } else if (scores[i] > top2) {
            top2 = scores[i];
        }
    }
    return top1 - top2;
}

} // namespace

InferenceServer::InferenceServer(Classifier classifier,
                                 ServeConfig config)
    : classifier_(std::move(classifier)),
      config_(config),
      slowLog_(config.slowLogCapacity),
      requestsOk_(
          obs::MetricRegistry::global().counter("serve.requests")),
      requestsBad_(obs::MetricRegistry::global().counter(
          "serve.requests.bad")),
      requestsOverload_(obs::MetricRegistry::global().counter(
          "serve.requests.overload")),
      batches_(obs::MetricRegistry::global().counter("serve.batches")),
      multiBatches_(obs::MetricRegistry::global().counter(
          "serve.batches.multi")),
      batchedRequests_(obs::MetricRegistry::global().counter(
          "serve.requests.batched")),
      quantizedRequests_(obs::MetricRegistry::global().counter(
          "serve.requests.quantized")),
      connectionsTotal_(obs::MetricRegistry::global().counter(
          "serve.connections")),
      watchdogTrips_(obs::MetricRegistry::global().counter(
          "serve.watchdog.trips")),
      slowCaptured_(obs::MetricRegistry::global().counter(
          "serve.slow.captured")),
      queueDepth_(
          obs::MetricRegistry::global().gauge("serve.queue.depth")),
      inflight_(obs::MetricRegistry::global().gauge("serve.inflight")),
      connectionsOpen_(obs::MetricRegistry::global().gauge(
          "serve.connections.open")),
      batchLastSize_(obs::MetricRegistry::global().gauge(
          "serve.batch.last_size")),
      healthReady_(obs::MetricRegistry::global().gauge(
          "serve.health.ready")),
      requestLatency_(obs::MetricRegistry::global().latency(
          "serve.request.latency")),
      batchGatherLatency_(obs::MetricRegistry::global().latency(
          "serve.batch.gather"))
{
    if (!classifier_.fitted())
        throw std::invalid_argument(
            "InferenceServer needs a fitted classifier");
    if (config_.precision != "auto" &&
        !precisionFromName(config_.precision).has_value())
        throw std::invalid_argument(
            "unknown serving precision: " + config_.precision);
    expectedFeatures_ =
        classifier_.encoder().chunks().numFeatures();
    if constexpr (obs::kReqTraceCompiled) {
        for (std::size_t s = 0; s < obs::kReqStageCount; ++s)
            stageLatency_[s] =
                &obs::MetricRegistry::global().latency(
                    obs::reqStageMetricName(
                        static_cast<obs::ReqStage>(s)));
        requestLatency_.enableExemplars();
    }
}

InferenceServer::~InferenceServer()
{
    stop();
}

void
InferenceServer::start()
{
    if (started_.exchange(true))
        throw std::logic_error("InferenceServer started twice");

    // Resolve the serving precision before any worker can score:
    // "auto" takes the int8 path whenever the model ships quantized
    // forms, and falls back to the exact float path otherwise.
    // Explicit "int8"/"binary" on a model without attached forms
    // quantizes on the spot (setServingPrecision builds them).
    Precision precision = Precision::kFloat64;
    if (config_.precision == "auto") {
        precision = classifier_.hasQuantized() ? Precision::kInt8
                                               : Precision::kFloat64;
    } else {
        precision = *precisionFromName(config_.precision);
    }
    classifier_.setServingPrecision(precision);

    requestListener_ = TcpListener::bind(config_.port);
    metricsListener_ = TcpListener::bind(config_.metricsPort);
    running_.store(true, std::memory_order_release);
    stopWorkers_.store(false, std::memory_order_release);

    const std::size_t workers = std::max<std::size_t>(
        config_.workers, 1);
    workerStates_.clear();
    for (std::size_t i = 0; i < workers; ++i)
        workerStates_.push_back(std::make_unique<WorkerState>());
    for (std::size_t i = 0; i < workers; ++i)
        workerThreads_.emplace_back(
            [this, i] { workerLoop(i); });
    acceptThread_ = std::thread([this] { acceptLoop(); });
    metricsThread_ = std::thread([this] { metricsLoop(); });
    watchdogThread_ = std::thread([this] { watchdogLoop(); });
    lastOverloadNs_.store(0, std::memory_order_relaxed);
    wasReady_.store(true, std::memory_order_relaxed);
    healthReady_.set(1.0);
    if constexpr (obs::kWindowsCompiled) {
        if (config_.health.windowSeconds > 0.0) {
            health_ = std::make_unique<obs::HealthMonitor>(
                obs::MetricRegistry::global(),
                obs::QualityTelemetry::global(), config_.health);
            samplerThread_ =
                std::thread([this] { samplerLoop(); });
        }
    }

    const std::size_t predictThreads =
        par::resolveThreads(config_.predictThreads);
    obs::MetricRegistry::global().setLabel(
        "kernel",
        hdc::kernels::implName(hdc::kernels::activeImpl()));
    obs::MetricRegistry::global().setLabel(
        "precision",
        precisionName(classifier_.servingPrecision()));
    obs::MetricRegistry::global()
        .gauge("serve.predict.threads")
        .set(static_cast<double>(predictThreads));

    obs::EventLog::global().emit(
        obs::LogLevel::kInfo, "serve.start",
        {{"port", std::to_string(port())},
         {"metrics_port", std::to_string(metricsPort())},
         {"workers", std::to_string(workers)},
         {"predict_threads", std::to_string(predictThreads)},
         {"features", std::to_string(expectedFeatures_)}});
}

void
InferenceServer::stop()
{
    if (!started_.load(std::memory_order_acquire))
        return;
    if (stopping_.exchange(true))
        return;

    // 1. Stop accepting; the accept/metrics/watchdog loops poll
    //    running_ on a short timeout.
    running_.store(false, std::memory_order_release);
    watchdogCv_.notifyAll();
    samplerCv_.notifyAll();
    if (acceptThread_.joinable())
        acceptThread_.join();
    requestListener_.close();

    // 2. EOF every reader (write side stays up so queued responses
    //    still go out), then join them: no further enqueues. The
    //    thread vector is swapped out under the mutex and joined
    //    outside it - the accept loop is already down, and joining
    //    under a lock the readers could touch would deadlock.
    std::vector<std::thread> readers;
    {
        const util::MutexLock lock(connectionsMutex_);
        for (const auto &conn : connections_)
            conn->stream.shutdownRead();
        readers.swap(connectionThreads_);
    }
    for (std::thread &t : readers)
        if (t.joinable())
            t.join();

    // 3. Let the workers drain whatever is left, then exit.
    stopWorkers_.store(true, std::memory_order_release);
    queueCv_.notifyAll();
    for (std::thread &t : workerThreads_)
        if (t.joinable())
            t.join();

    if (metricsThread_.joinable())
        metricsThread_.join();
    metricsListener_.close();
    if (watchdogThread_.joinable())
        watchdogThread_.join();
    if (samplerThread_.joinable())
        samplerThread_.join();

    {
        const util::MutexLock lock(connectionsMutex_);
        for (const auto &conn : connections_) {
            conn->open.store(false, std::memory_order_relaxed);
            conn->stream.close();
        }
        connections_.clear();
        connectionsOpen_.set(0.0);
    }
    workerThreads_.clear();

    obs::EventLog::global().emit(
        obs::LogLevel::kInfo, "serve.shutdown",
        {{"requests", std::to_string(requestsOk_.value())},
         {"rejected",
          std::to_string(requestsBad_.value() +
                         requestsOverload_.value())}});
    started_.store(false, std::memory_order_release);
    stopping_.store(false, std::memory_order_release);
}

std::uint64_t
InferenceServer::requestsServed() const
{
    return requestsOk_.value();
}

void
InferenceServer::acceptLoop()
{
    while (running_.load(std::memory_order_acquire)) {
        TcpStream stream;
        try {
            stream = requestListener_.accept(100);
        } catch (const NetError &) {
            continue; // transient accept failure
        }
        if (!stream.valid())
            continue;
        connectionsTotal_.add();
        auto conn = std::make_shared<Connection>(std::move(stream));
        const util::MutexLock lock(connectionsMutex_);
        connections_.push_back(conn);
        // Reader threads are reaped in stop(); connection turnover
        // at serve-smoke scale does not warrant a reaper thread yet.
        connectionThreads_.emplace_back(
            [this, conn] { connectionLoop(conn); });
        connectionsOpen_.set(static_cast<double>(
            openConnections_.fetch_add(1,
                                       std::memory_order_relaxed) +
            1));
    }
}

void
InferenceServer::connectionLoop(std::shared_ptr<Connection> conn)
{
    obs::Profiler::registerCurrentThread();
    obs::EventLog::global().emit(obs::LogLevel::kDebug,
                                 "serve.conn.open");
    try {
        std::string line;
        while (conn->stream.readLine(line)) {
            if (line.empty())
                continue;
            // Reader threads burn CPU only while parsing/enqueuing;
            // attribute those samples to the parse stage.
            obs::profilerPublishStage(obs::ReqStage::kParse);
            handleRequestLine(conn, line);
            obs::profilerPublishStage(obs::kProfileStageNone);
        }
    } catch (const NetError &) {
        // Peer vanished mid-read; nothing to answer.
    }
    conn->open.store(false, std::memory_order_relaxed);
    connectionsOpen_.set(static_cast<double>(
        openConnections_.fetch_sub(1, std::memory_order_relaxed) -
        1));
    obs::EventLog::global().emit(obs::LogLevel::kDebug,
                                 "serve.conn.close");
}

void
InferenceServer::handleRequestLine(
    const std::shared_ptr<Connection> &conn, const std::string &line)
{
    Request req;
    req.conn = conn;
    req.ctx.startNs = util::Timer::processNanoseconds();
    std::string parseError;
    const std::unique_ptr<JsonValue> doc =
        parseJson(line, parseError);

    if (doc) {
        if (const JsonValue *id = doc->find("id")) {
            if (id->isNumber()) {
                req.idKind = IdKind::kNumber;
                req.idNumber = id->number;
            } else if (id->isString()) {
                req.idKind = IdKind::kString;
                req.idString = id->string;
            }
        }
        if (const JsonValue *scores = doc->find("scores"))
            req.wantScores =
                scores->type == JsonValue::Type::kBool &&
                scores->boolean;
        // A client-supplied trace id is protocol (echoed even in
        // -DLOOKHD_OBS=OFF builds); a malformed one is ignored, not
        // rejected - tracing must never fail a request.
        if (const JsonValue *trace = doc->find("trace"))
            if (trace->isString() &&
                obs::parseTraceIdHex(trace->string, req.ctx.trace))
                req.ctx.clientSupplied = true;
    }

    auto reject = [&](const std::string &message,
                      obs::Counter &counter, const char *event) {
        counter.add();
        obs::EventLog::global().emit(obs::LogLevel::kWarn, event,
                                     {{"error", message}});
        conn->writeLine(errorBody(req.idKind, req.idNumber,
                                  req.idString, req.ctx.trace,
                                  message));
    };

    if (!doc) {
        reject("bad JSON: " + parseError, requestsBad_,
               "serve.request.bad");
        return;
    }
    const JsonValue *features = doc->find("features");
    if (features == nullptr || !features->isArray()) {
        reject("missing \"features\" array", requestsBad_,
               "serve.request.bad");
        return;
    }
    req.features.reserve(features->array.size());
    for (const JsonValue &v : features->array) {
        if (!v.isNumber()) {
            reject("non-numeric feature", requestsBad_,
                   "serve.request.bad");
            return;
        }
        req.features.push_back(v.number);
    }
    if (req.features.size() != expectedFeatures_) {
        reject("expected " + std::to_string(expectedFeatures_) +
                   " features, got " +
                   std::to_string(req.features.size()),
               requestsBad_, "serve.request.bad");
        return;
    }

    if constexpr (obs::kReqTraceCompiled) {
        if (req.ctx.trace.zero())
            req.ctx.trace = obs::makeTraceId();
        req.ctx.span = obs::makeSpanId();
    }
    req.enqueueNs = util::Timer::processNanoseconds();
    req.ctx.setStage(obs::ReqStage::kParse,
                     req.enqueueNs - req.ctx.startNs);
    {
        const util::MutexLock lock(queueMutex_);
        if (queue_.size() >= config_.queueCapacity) {
            lastOverloadNs_.store(
                util::Timer::processNanoseconds(),
                std::memory_order_relaxed);
            reject("overloaded", requestsOverload_,
                   "serve.overload");
            return;
        }
        queue_.push_back(std::move(req));
        queueDepth_.set(static_cast<double>(queue_.size()));
    }
    queueCv_.notifyOne();
}

void
InferenceServer::workerLoop(std::size_t workerIndex)
{
    obs::Profiler::registerCurrentThread();
    WorkerState &state = *workerStates_[workerIndex];
    while (true) {
        std::vector<Request> batch;
        obs::profilerPublishStage(obs::ReqStage::kBatchForm);
        {
            const util::MutexLock lock(queueMutex_);
            // Explicit wait loop (not a predicate lambda) so the
            // analysis sees queue_ read with queueMutex_ held.
            while (queue_.empty() &&
                   !stopWorkers_.load(std::memory_order_acquire))
                queueCv_.wait(queueMutex_);
            if (queue_.empty() &&
                stopWorkers_.load(std::memory_order_acquire))
                return;
            const std::uint64_t gatherStart =
                util::Timer::processNanoseconds();
            batch.push_back(std::move(queue_.front()));
            queue_.pop_front();
            batch.back().popNs = gatherStart;
            const auto deadline =
                std::chrono::steady_clock::now() +
                std::chrono::microseconds(config_.batchMaxDelayUs);
            while (batch.size() < config_.batchMaxSize) {
                if (!queue_.empty()) {
                    batch.push_back(std::move(queue_.front()));
                    queue_.pop_front();
                    batch.back().popNs =
                        util::Timer::processNanoseconds();
                    continue;
                }
                if (stopWorkers_.load(std::memory_order_acquire))
                    break;
                if (queueCv_.waitUntil(queueMutex_, deadline) ==
                    std::cv_status::timeout)
                    break;
            }
            queueDepth_.set(static_cast<double>(queue_.size()));
            batchGatherLatency_.record(
                util::Timer::processNanoseconds() - gatherStart);
        }
        processBatch(batch, state);
    }
}

void
InferenceServer::processBatch(std::vector<Request> &batch,
                              WorkerState &state)
{
    state.batchSeq.fetch_add(1, std::memory_order_relaxed);
    state.stage.store("predict", std::memory_order_relaxed);
    const std::uint64_t batchStartNs =
        util::Timer::processNanoseconds();
    state.busySinceNs.store(batchStartNs,
                            std::memory_order_relaxed);
    {
        const util::MutexLock lock(state.inflightMutex);
        state.inflightBatch.clear();
        for (const Request &req : batch) {
            WorkerState::InflightEntry entry;
            if (!req.ctx.trace.zero())
                entry.trace = obs::traceIdHex(req.ctx.trace);
            entry.id = idText(req.idKind, req.idNumber,
                              req.idString);
            entry.enqueueNs = req.enqueueNs;
            state.inflightBatch.push_back(std::move(entry));
        }
    }
    for (Request &req : batch) {
        req.ctx.setStage(obs::ReqStage::kQueue,
                         req.popNs - req.enqueueNs);
        req.ctx.setStage(obs::ReqStage::kBatchForm,
                         batchStartNs - req.popNs);
    }
    if (config_.batchHook)
        config_.batchHook(batch.size());
    batches_.add();
    batchLastSize_.set(static_cast<double>(batch.size()));
    inflight_.set(static_cast<double>(
        inflightRequests_.fetch_add(
            static_cast<std::int64_t>(batch.size()),
            std::memory_order_relaxed) +
        static_cast<std::int64_t>(batch.size())));
    obs::EventLog::global().emit(
        obs::LogLevel::kDebug, "serve.batch",
        {{"size", std::to_string(batch.size())}});
    if (batch.size() > 1) {
        multiBatches_.add();
        batchedRequests_.add(
            static_cast<std::uint64_t>(batch.size()));
    }
    if (classifier_.servingPrecision() != Precision::kFloat64)
        quantizedRequests_.add(
            static_cast<std::uint64_t>(batch.size()));

    // One batched kernel pass over the whole batch; bit-identical to
    // per-request classifier_.scores() (see Classifier::scoresBatch).
    std::vector<std::span<const double>> rows;
    rows.reserve(batch.size());
    for (const Request &req : batch)
        rows.emplace_back(req.features);
    std::vector<std::vector<double>> batchScores;
    const std::uint64_t scoreStartNs =
        util::Timer::processNanoseconds();
    obs::profilerPublishStage(obs::ReqStage::kScore);
    {
        LOOKHD_SPAN("serve.predict", "serve");
        batchScores =
            classifier_.scoresBatch(rows, config_.predictThreads);
        // Load-testing aid: inflate the scoring stage so overload
        // and latency-SLO scenarios reproduce deterministically.
        if (config_.scoreDelayNs > 0)
            std::this_thread::sleep_for(
                std::chrono::nanoseconds(config_.scoreDelayNs));
    }
    const std::uint64_t scoreEndNs =
        util::Timer::processNanoseconds();

    // Serialize/write run back to back per request, so chaining one
    // timestamp through the loop costs a single clock read per hop.
    std::uint64_t t = scoreEndNs;
    obs::profilerPublishStage(obs::ReqStage::kSerialize);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        Request &req = batch[i];
        const std::vector<double> &scores = batchScores[i];
        const std::size_t pred = hdc::argmax(scores);
        LOOKHD_QUALITY_MARGIN("serve.predict", scores);
        req.ctx.setStage(obs::ReqStage::kScore,
                         scoreEndNs - scoreStartNs);

        obs::JsonWriter w;
        w.beginObject();
        writeId(w, req.idKind, req.idNumber, req.idString);
        if (!req.ctx.trace.zero())
            w.kv("trace", obs::traceIdHex(req.ctx.trace));
        w.kv("pred", static_cast<std::uint64_t>(pred));
        if (req.wantScores) {
            w.key("scores").beginArray();
            for (const double s : scores)
                w.value(s);
            w.endArray();
        }
        w.endObject();
        const std::uint64_t serialized =
            util::Timer::processNanoseconds();
        req.ctx.setStage(obs::ReqStage::kSerialize, serialized - t);

        // Count before the response write: a client that has read
        // the answer must already see it in requestsServed() and
        // /metrics.
        if constexpr (obs::kReqTraceCompiled) {
            requestLatency_.record(serialized - req.enqueueNs,
                                   obs::traceIdHex(req.ctx.trace));
        } else {
            requestLatency_.record(serialized - req.enqueueNs);
        }
        requestsOk_.add();
        state.stage.store("respond", std::memory_order_relaxed);
        obs::profilerPublishStage(obs::ReqStage::kWrite);
        req.conn->writeLine(w.str());
        obs::profilerPublishStage(obs::ReqStage::kSerialize);
        state.stage.store("predict", std::memory_order_relaxed);
        const std::uint64_t written =
            util::Timer::processNanoseconds();
        req.ctx.setStage(obs::ReqStage::kWrite, written - serialized);
        t = written;

        if constexpr (obs::kReqTraceCompiled) {
            if (stageLatency_[0] != nullptr)
                for (std::size_t s = 0; s < obs::kReqStageCount;
                     ++s)
                    stageLatency_[s]->record(req.ctx.stageNs[s]);
            const std::uint64_t totalNs = written - req.ctx.startNs;
            bool capture = false;
            obs::CaptureReason reason = obs::CaptureReason::kSlow;
            if (config_.slowThresholdNs > 0 &&
                totalNs >= config_.slowThresholdNs) {
                capture = true;
            } else if (config_.sampleEveryN > 0 &&
                       sampleCounter_.fetch_add(
                           1, std::memory_order_relaxed) %
                               config_.sampleEveryN ==
                           0) {
                capture = true;
                reason = obs::CaptureReason::kSampled;
            }
            if (capture) {
                obs::SlowRequestRecord record;
                record.ctx = req.ctx;
                record.totalNs = totalNs;
                record.batchSize = batch.size();
                record.predictedClass =
                    static_cast<std::uint64_t>(pred);
                record.margin = scoreMargin(scores);
                record.reason = reason;
                record.clientId = idText(req.idKind, req.idNumber,
                                         req.idString);
                slowLog_.record(std::move(record));
                slowCaptured_.add();
            }
        }
    }

    inflight_.set(static_cast<double>(
        inflightRequests_.fetch_sub(
            static_cast<std::int64_t>(batch.size()),
            std::memory_order_relaxed) -
        static_cast<std::int64_t>(batch.size())));
    {
        const util::MutexLock lock(state.inflightMutex);
        state.inflightBatch.clear();
    }
    state.busySinceNs.store(0, std::memory_order_relaxed);
    state.stage.store("idle", std::memory_order_relaxed);
    obs::profilerPublishStage(obs::kProfileStageNone);
}

std::string
InferenceServer::debugRequestsBody() const
{
    obs::JsonWriter w;
    w.beginObject();
    w.kv("captured_total", slowLog_.totalCaptured());
    w.key("records").beginArray();
    for (const obs::SlowRequestRecord &r : slowLog_.snapshot())
        obs::writeSlowRequestJson(w, r);
    w.endArray();
    w.endObject();
    return w.str() + "\n";
}

std::string
InferenceServer::debugInflightBody()
{
    const std::uint64_t now = util::Timer::processNanoseconds();
    const auto ageNs = [now](std::uint64_t sinceNs) {
        return sinceNs == 0 || sinceNs > now ? 0 : now - sinceNs;
    };
    obs::JsonWriter w;
    w.beginObject();
    w.key("queued").beginArray();
    {
        const util::MutexLock lock(queueMutex_);
        for (const Request &req : queue_) {
            w.beginObject();
            if (!req.ctx.trace.zero())
                w.kv("trace", obs::traceIdHex(req.ctx.trace));
            w.kv("id", idText(req.idKind, req.idNumber,
                              req.idString));
            w.kv("age_ns", ageNs(req.enqueueNs));
            w.endObject();
        }
    }
    w.endArray();
    w.key("workers").beginArray();
    for (std::size_t i = 0; i < workerStates_.size(); ++i) {
        WorkerState &state = *workerStates_[i];
        const std::uint64_t busySince =
            state.busySinceNs.load(std::memory_order_relaxed);
        w.beginObject();
        w.kv("worker", static_cast<std::uint64_t>(i));
        w.kv("stage", std::string(state.stage.load(
                          std::memory_order_relaxed)));
        w.kv("busy_ns", ageNs(busySince));
        w.key("batch").beginArray();
        {
            const util::MutexLock lock(state.inflightMutex);
            for (const WorkerState::InflightEntry &entry :
                 state.inflightBatch) {
                w.beginObject();
                if (!entry.trace.empty())
                    w.kv("trace", entry.trace);
                w.kv("id", entry.id);
                w.kv("age_ns", ageNs(entry.enqueueNs));
                w.endObject();
            }
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str() + "\n";
}

std::string
InferenceServer::debugTraceBody(const std::string &query)
{
    std::uint64_t ms = 50;
    const std::size_t arg = query.find("ms=");
    if (arg != std::string::npos)
        ms = std::strtoull(query.c_str() + arg + 3, nullptr, 10);
    ms = std::clamp<std::uint64_t>(ms, 1, 2000);
    // Deliberately blocks the scrape thread for the capture window:
    // one debug endpoint, one caller, bounded at 2 s.
    const bool wasTracing = obs::tracing();
    obs::setTracing(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    obs::setTracing(wasTracing);
    std::ostringstream out;
    obs::writeChromeTrace(out);
    out << '\n';
    return out.str();
}

std::string
InferenceServer::debugProfileBody(const std::string &query,
                                  std::string &status,
                                  std::string &contentType)
{
    if (!obs::kProfilerCompiled) {
        status = "404 Not Found";
        contentType = "text/plain; charset=utf-8";
        return "profiler disabled in this build\n";
    }
    double seconds = 2.0;
    unsigned hz = obs::kProfilerDefaultHz;
    const std::size_t secondsArg = query.find("seconds=");
    if (secondsArg != std::string::npos)
        seconds = std::strtod(query.c_str() + secondsArg + 8,
                              nullptr);
    const std::size_t hzArg = query.find("hz=");
    if (hzArg != std::string::npos)
        hz = static_cast<unsigned>(std::strtoul(
            query.c_str() + hzArg + 3, nullptr, 10));
    // Like /debug/trace, the capture deliberately blocks the scrape
    // thread for the window; clamp so a typo cannot park it.
    seconds = std::clamp(seconds, 0.1, 30.0);
    hz = std::clamp(hz, 1u, 1000u);
    const bool speedscope =
        query.find("format=speedscope") != std::string::npos;

    const obs::ProfileReport report =
        obs::Profiler::global().profileFor(seconds, hz);
    if (report.hz == 0) {
        // start() refused: a session (another scrape, or a
        // --profile-out run) is already sampling.
        status = "503 Service Unavailable";
        contentType = "text/plain; charset=utf-8";
        return "profiler busy\n";
    }
    if (speedscope) {
        contentType = "application/json";
        return report.speedscopeJson() + "\n";
    }
    contentType = "text/plain; charset=utf-8";
    return report.collapsed();
}

void
InferenceServer::metricsLoop()
{
    obs::Profiler::registerCurrentThread();
    while (running_.load(std::memory_order_acquire)) {
        TcpStream stream;
        try {
            stream = metricsListener_.accept(100);
        } catch (const NetError &) {
            continue;
        }
        if (!stream.valid())
            continue;
        try {
            std::string requestLine;
            if (!stream.readLine(requestLine))
                continue;
            // Drain headers so the client sees a clean HTTP exchange.
            std::string header;
            while (stream.readLine(header) && !header.empty()) {
            }

            std::string method;
            std::string path = "/";
            const std::size_t firstSpace = requestLine.find(' ');
            if (firstSpace != std::string::npos) {
                method = requestLine.substr(0, firstSpace);
                const std::size_t secondSpace =
                    requestLine.find(' ', firstSpace + 1);
                path = requestLine.substr(
                    firstSpace + 1,
                    secondSpace == std::string::npos
                        ? std::string::npos
                        : secondSpace - firstSpace - 1);
            }
            std::string query;
            const std::size_t questionMark = path.find('?');
            if (questionMark != std::string::npos) {
                query = path.substr(questionMark + 1);
                path.resize(questionMark);
            }

            if (method != "GET") {
                stream.sendAll(httpResponse(
                    "405 Method Not Allowed",
                    "text/plain; charset=utf-8",
                    "method not allowed\n", "Allow: GET\r\n"));
                continue;
            }

            std::string status = "200 OK";
            std::string contentType =
                "text/plain; version=0.0.4; charset=utf-8";
            std::string body;
            if (path == "/metrics") {
                // Resource gauges refresh per scrape so Prometheus
                // never reads a stale sampler-period value.
                obs::publishProcessGauges();
                body = obs::renderPrometheus(
                    obs::MetricRegistry::global().snapshot(),
                    obs::spanRollup());
            } else if (path == "/metrics.json") {
                obs::publishProcessGauges();
                contentType = "application/json";
                body = obs::snapshotJson(
                           obs::MetricRegistry::global()) +
                       "\n";
            } else if (path == "/healthz") {
                const Readiness r = checkReadiness();
                if (r.ready) {
                    contentType = "text/plain; charset=utf-8";
                    body = "ok\n";
                } else {
                    status = "503 Service Unavailable";
                    contentType = "application/json";
                    obs::JsonWriter w;
                    w.beginObject();
                    w.kv("status", "unready");
                    w.kv("reason", r.reason);
                    w.endObject();
                    body = w.str() + "\n";
                }
            } else if (path == "/livez") {
                // Liveness, not readiness: the scrape loop
                // answering IS the signal.
                contentType = "text/plain; charset=utf-8";
                body = "ok\n";
            } else if (path == "/debug/health") {
                contentType = "application/json";
                body = debugHealthBody();
            } else if (path == "/debug/windows") {
                if (health_ == nullptr) {
                    status = "404 Not Found";
                    contentType = "text/plain; charset=utf-8";
                    body = "window sampler disabled\n";
                } else {
                    contentType = "application/json";
                    body = debugWindowsBody(query);
                }
            } else if (path == "/debug/requests") {
                contentType = "application/json";
                body = debugRequestsBody();
            } else if (path == "/debug/inflight") {
                contentType = "application/json";
                body = debugInflightBody();
            } else if (path == "/debug/trace") {
                contentType = "application/json";
                body = debugTraceBody(query);
            } else if (path == "/debug/profile") {
                body = debugProfileBody(query, status, contentType);
            } else {
                status = "404 Not Found";
                contentType = "text/plain; charset=utf-8";
                body = "not found\n";
            }

            stream.sendAll(httpResponse(status, contentType, body));
        } catch (const NetError &) {
            // Scraper hung up mid-exchange; next scrape will do.
        }
    }
}

InferenceServer::Readiness
InferenceServer::checkReadiness()
{
    Readiness r;
    const std::uint64_t now = util::Timer::processNanoseconds();
    if (stopping_.load(std::memory_order_acquire) ||
        !running_.load(std::memory_order_acquire)) {
        r = {false, "draining"};
    } else {
        bool saturated = false;
        {
            const util::MutexLock lock(queueMutex_);
            saturated = queue_.size() >= config_.queueCapacity;
        }
        const std::uint64_t lastOverload =
            lastOverloadNs_.load(std::memory_order_relaxed);
        const bool recentOverload =
            config_.overloadHoldMs > 0 && lastOverload != 0 &&
            now - lastOverload <
                config_.overloadHoldMs * 1'000'000ULL;
        bool stalled = false;
        if (config_.watchdogDeadlineMs > 0) {
            for (const auto &state : workerStates_) {
                const std::uint64_t busySince =
                    state->busySinceNs.load(
                        std::memory_order_relaxed);
                if (busySince != 0 &&
                    now - busySince >= config_.watchdogDeadlineMs *
                                           1'000'000ULL) {
                    stalled = true;
                    break;
                }
            }
        }
        if (saturated) {
            r = {false, "queue_saturated"};
        } else if (recentOverload) {
            r = {false, "overloaded"};
        } else if (stalled) {
            r = {false, "watchdog_stalled"};
        } else if (health_ != nullptr) {
            const obs::HealthVerdict v = health_->verdict();
            if (!v.ready)
                r = {false, v.reason};
        }
    }

    healthReady_.set(r.ready ? 1.0 : 0.0);
    const bool was =
        wasReady_.exchange(r.ready, std::memory_order_relaxed);
    if (was != r.ready)
        obs::EventLog::global().emit(
            r.ready ? obs::LogLevel::kInfo : obs::LogLevel::kWarn,
            r.ready ? "serve.health.ready" : "serve.health.unready",
            {{"reason", r.reason}});
    return r;
}

std::string
InferenceServer::debugHealthBody()
{
    const Readiness r = checkReadiness();
    const std::uint64_t now = util::Timer::processNanoseconds();
    std::uint64_t queueDepth = 0;
    {
        const util::MutexLock lock(queueMutex_);
        queueDepth = queue_.size();
    }
    const std::uint64_t lastOverload =
        lastOverloadNs_.load(std::memory_order_relaxed);
    obs::JsonWriter w;
    w.beginObject();
    w.kv("ready", r.ready);
    w.kv("reason", r.reason);
    w.key("protocol").beginObject();
    w.kv("draining", stopping_.load(std::memory_order_acquire));
    w.kv("queue_depth", queueDepth);
    w.kv("queue_capacity",
         static_cast<std::uint64_t>(config_.queueCapacity));
    w.kv("overload_recent",
         config_.overloadHoldMs > 0 && lastOverload != 0 &&
             now - lastOverload <
                 config_.overloadHoldMs * 1'000'000ULL);
    w.kv("overload_hold_ms", config_.overloadHoldMs);
    w.endObject();
    if (health_ != nullptr) {
        w.key("engine");
        health_->writeHealthJson(w);
    }
    w.endObject();
    return w.str() + "\n";
}

std::string
InferenceServer::debugWindowsBody(const std::string &query)
{
    double seconds = 0.0; // 0 = everything retained
    const std::size_t arg = query.find("s=");
    if (arg != std::string::npos)
        seconds = std::strtod(query.c_str() + arg + 2, nullptr);
    obs::JsonWriter w;
    health_->writeWindowsJson(w, seconds);
    return w.str() + "\n";
}

void
InferenceServer::samplerLoop()
{
    if (health_ == nullptr || config_.health.windowSeconds <= 0.0)
        return;
    const auto period =
        std::chrono::microseconds(std::max<std::uint64_t>(
            static_cast<std::uint64_t>(
                config_.health.windowSeconds * 1e6),
            1000));
    // Same interruptible-sleep shape as the watchdog: the loop-local
    // mutex guards nothing, it satisfies the CondVar wait protocol.
    util::Mutex sleepMutex;
    const util::MutexLock sleepLock(sleepMutex);
    while (running_.load(std::memory_order_acquire)) {
        if (samplerCv_.waitFor(sleepMutex, period) ==
            std::cv_status::no_timeout)
            continue; // woken early (stop or spurious): recheck
        if (!running_.load(std::memory_order_acquire))
            break;
        health_->sample(util::Timer::processNanoseconds(),
                        obs::wallClockMs());
        obs::publishProcessGauges();
    }
}

void
InferenceServer::watchdogLoop()
{
    if (config_.watchdogDeadlineMs == 0)
        return;
    const auto period =
        std::chrono::milliseconds(std::max<std::uint64_t>(
            config_.watchdogPeriodMs, 1));
    // The mutex exists only to satisfy the wait protocol: nothing is
    // guarded by it, the timed sleep (interruptible by stop()) is
    // the point.
    util::Mutex sleepMutex;
    const util::MutexLock sleepLock(sleepMutex);
    while (running_.load(std::memory_order_acquire)) {
        watchdogCv_.waitFor(sleepMutex, period);
        const std::uint64_t now = util::Timer::processNanoseconds();
        for (std::size_t i = 0; i < workerStates_.size(); ++i) {
            WorkerState &state = *workerStates_[i];
            const std::uint64_t busySince =
                state.busySinceNs.load(std::memory_order_relaxed);
            if (busySince == 0)
                continue;
            const std::uint64_t elapsedNs = now - busySince;
            if (elapsedNs <
                config_.watchdogDeadlineMs * 1'000'000ULL)
                continue;
            const std::uint64_t batch =
                state.batchSeq.load(std::memory_order_relaxed);
            if (batch == state.lastTrippedBatch)
                continue; // already reported this stuck batch
            state.lastTrippedBatch = batch;
            watchdogTrips_.add();
            obs::EventLog::global().emit(
                obs::LogLevel::kError, "serve.watchdog.trip",
                {{"worker", std::to_string(i)},
                 {"stage",
                  std::string(state.stage.load(
                      std::memory_order_relaxed))},
                 {"elapsed_ms",
                  std::to_string(elapsedNs / 1'000'000ULL)},
                 {"batch", std::to_string(batch)},
                 {"span_rollup", rollupDump()}});
        }
    }
}

} // namespace lookhd::serve
