#include "serve/server.hpp"

#include <algorithm>
#include <chrono>

#include "hdc/kernels.hpp"
#include "hdc/similarity.hpp"
#include "obs/eventlog.hpp"
#include "par/thread_pool.hpp"
#include "obs/exposition.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "serve/jsonin.hpp"
#include "util/timer.hpp"

namespace lookhd::serve {

namespace {

/** Compact one-line span-rollup dump for watchdog-trip events. */
std::string
rollupDump(std::size_t maxSites = 8)
{
    std::vector<obs::SpanStats> rollup = obs::spanRollup();
    std::sort(rollup.begin(), rollup.end(),
              [](const obs::SpanStats &a, const obs::SpanStats &b) {
                  return a.totalNs > b.totalNs;
              });
    std::string out;
    for (std::size_t i = 0;
         i < rollup.size() && i < maxSites; ++i) {
        if (!out.empty())
            out += ' ';
        out += rollup[i].name + "=" +
               std::to_string(rollup[i].count) + "x/" +
               std::to_string(rollup[i].totalNs) + "ns";
    }
    return out.empty() ? "(no spans)" : out;
}

} // namespace

/** Requests' echoed id: absent, numeric, or string. */
enum class IdKind
{
    kNone,
    kNumber,
    kString,
};

struct InferenceServer::Connection
{
    explicit Connection(TcpStream s) : stream(std::move(s)) {}

    /** Deliberately NOT guarded by writeMutex: stop() shuts the
     * stream down lock-free to unblock a reader mid-readLine, and
     * writers re-check `open` under the mutex before touching it. */
    TcpStream stream;
    util::Mutex writeMutex;
    std::atomic<bool> open{true};

    /** Serialize one response line; false once the peer went away. */
    bool
    writeLine(const std::string &body)
    {
        const util::MutexLock lock(writeMutex);
        if (!open.load(std::memory_order_relaxed))
            return false;
        if (!stream.sendAll(body) || !stream.sendAll("\n")) {
            open.store(false, std::memory_order_relaxed);
            return false;
        }
        return true;
    }
};

struct InferenceServer::Request
{
    std::shared_ptr<Connection> conn;
    IdKind idKind = IdKind::kNone;
    double idNumber = 0.0;
    std::string idString;
    std::vector<double> features;
    bool wantScores = false;
    std::uint64_t enqueueNs = 0;
};

struct InferenceServer::WorkerState
{
    /** processNanoseconds() when the current batch started; 0=idle. */
    std::atomic<std::uint64_t> busySinceNs{0};
    std::atomic<const char *> stage{"idle"};
    /** Monotonic per-worker batch number; lets the watchdog trip
     * once per stuck batch instead of once per poll. */
    std::atomic<std::uint64_t> batchSeq{0};
    std::uint64_t lastTrippedBatch = 0; // watchdog-thread private
};

namespace {

void
writeId(obs::JsonWriter &w, IdKind kind, double number,
        const std::string &string)
{
    if (kind == IdKind::kNumber)
        w.kv("id", number);
    else if (kind == IdKind::kString)
        w.kv("id", string);
}

std::string
errorBody(IdKind kind, double number, const std::string &string,
          const std::string &message)
{
    obs::JsonWriter w;
    w.beginObject();
    writeId(w, kind, number, string);
    w.kv("error", message);
    w.endObject();
    return w.str();
}

} // namespace

InferenceServer::InferenceServer(Classifier classifier,
                                 ServeConfig config)
    : classifier_(std::move(classifier)),
      config_(config),
      requestsOk_(
          obs::MetricRegistry::global().counter("serve.requests")),
      requestsBad_(obs::MetricRegistry::global().counter(
          "serve.requests.bad")),
      requestsOverload_(obs::MetricRegistry::global().counter(
          "serve.requests.overload")),
      batches_(obs::MetricRegistry::global().counter("serve.batches")),
      multiBatches_(obs::MetricRegistry::global().counter(
          "serve.batches.multi")),
      batchedRequests_(obs::MetricRegistry::global().counter(
          "serve.requests.batched")),
      connectionsTotal_(obs::MetricRegistry::global().counter(
          "serve.connections")),
      watchdogTrips_(obs::MetricRegistry::global().counter(
          "serve.watchdog.trips")),
      queueDepth_(
          obs::MetricRegistry::global().gauge("serve.queue.depth")),
      inflight_(obs::MetricRegistry::global().gauge("serve.inflight")),
      connectionsOpen_(obs::MetricRegistry::global().gauge(
          "serve.connections.open")),
      batchLastSize_(obs::MetricRegistry::global().gauge(
          "serve.batch.last_size")),
      requestLatency_(obs::MetricRegistry::global().latency(
          "serve.request.latency")),
      batchGatherLatency_(obs::MetricRegistry::global().latency(
          "serve.batch.gather"))
{
    if (!classifier_.fitted())
        throw std::invalid_argument(
            "InferenceServer needs a fitted classifier");
    expectedFeatures_ =
        classifier_.encoder().chunks().numFeatures();
}

InferenceServer::~InferenceServer()
{
    stop();
}

void
InferenceServer::start()
{
    if (started_.exchange(true))
        throw std::logic_error("InferenceServer started twice");
    requestListener_ = TcpListener::bind(config_.port);
    metricsListener_ = TcpListener::bind(config_.metricsPort);
    running_.store(true, std::memory_order_release);
    stopWorkers_.store(false, std::memory_order_release);

    const std::size_t workers = std::max<std::size_t>(
        config_.workers, 1);
    workerStates_.clear();
    for (std::size_t i = 0; i < workers; ++i)
        workerStates_.push_back(std::make_unique<WorkerState>());
    for (std::size_t i = 0; i < workers; ++i)
        workerThreads_.emplace_back(
            [this, i] { workerLoop(i); });
    acceptThread_ = std::thread([this] { acceptLoop(); });
    metricsThread_ = std::thread([this] { metricsLoop(); });
    watchdogThread_ = std::thread([this] { watchdogLoop(); });

    const std::size_t predictThreads =
        par::resolveThreads(config_.predictThreads);
    obs::MetricRegistry::global().setLabel(
        "kernel",
        hdc::kernels::implName(hdc::kernels::activeImpl()));
    obs::MetricRegistry::global()
        .gauge("serve.predict.threads")
        .set(static_cast<double>(predictThreads));

    obs::EventLog::global().emit(
        obs::LogLevel::kInfo, "serve.start",
        {{"port", std::to_string(port())},
         {"metrics_port", std::to_string(metricsPort())},
         {"workers", std::to_string(workers)},
         {"predict_threads", std::to_string(predictThreads)},
         {"features", std::to_string(expectedFeatures_)}});
}

void
InferenceServer::stop()
{
    if (!started_.load(std::memory_order_acquire))
        return;
    if (stopping_.exchange(true))
        return;

    // 1. Stop accepting; the accept/metrics/watchdog loops poll
    //    running_ on a short timeout.
    running_.store(false, std::memory_order_release);
    watchdogCv_.notifyAll();
    if (acceptThread_.joinable())
        acceptThread_.join();
    requestListener_.close();

    // 2. EOF every reader (write side stays up so queued responses
    //    still go out), then join them: no further enqueues. The
    //    thread vector is swapped out under the mutex and joined
    //    outside it - the accept loop is already down, and joining
    //    under a lock the readers could touch would deadlock.
    std::vector<std::thread> readers;
    {
        const util::MutexLock lock(connectionsMutex_);
        for (const auto &conn : connections_)
            conn->stream.shutdownRead();
        readers.swap(connectionThreads_);
    }
    for (std::thread &t : readers)
        if (t.joinable())
            t.join();

    // 3. Let the workers drain whatever is left, then exit.
    stopWorkers_.store(true, std::memory_order_release);
    queueCv_.notifyAll();
    for (std::thread &t : workerThreads_)
        if (t.joinable())
            t.join();

    if (metricsThread_.joinable())
        metricsThread_.join();
    metricsListener_.close();
    if (watchdogThread_.joinable())
        watchdogThread_.join();

    {
        const util::MutexLock lock(connectionsMutex_);
        for (const auto &conn : connections_) {
            conn->open.store(false, std::memory_order_relaxed);
            conn->stream.close();
        }
        connections_.clear();
        connectionsOpen_.set(0.0);
    }
    workerThreads_.clear();

    obs::EventLog::global().emit(
        obs::LogLevel::kInfo, "serve.shutdown",
        {{"requests", std::to_string(requestsOk_.value())},
         {"rejected",
          std::to_string(requestsBad_.value() +
                         requestsOverload_.value())}});
    started_.store(false, std::memory_order_release);
    stopping_.store(false, std::memory_order_release);
}

std::uint64_t
InferenceServer::requestsServed() const
{
    return requestsOk_.value();
}

void
InferenceServer::acceptLoop()
{
    while (running_.load(std::memory_order_acquire)) {
        TcpStream stream;
        try {
            stream = requestListener_.accept(100);
        } catch (const NetError &) {
            continue; // transient accept failure
        }
        if (!stream.valid())
            continue;
        connectionsTotal_.add();
        auto conn = std::make_shared<Connection>(std::move(stream));
        const util::MutexLock lock(connectionsMutex_);
        connections_.push_back(conn);
        // Reader threads are reaped in stop(); connection turnover
        // at serve-smoke scale does not warrant a reaper thread yet.
        connectionThreads_.emplace_back(
            [this, conn] { connectionLoop(conn); });
        connectionsOpen_.set(static_cast<double>(
            openConnections_.fetch_add(1,
                                       std::memory_order_relaxed) +
            1));
    }
}

void
InferenceServer::connectionLoop(std::shared_ptr<Connection> conn)
{
    obs::EventLog::global().emit(obs::LogLevel::kDebug,
                                 "serve.conn.open");
    try {
        std::string line;
        while (conn->stream.readLine(line)) {
            if (line.empty())
                continue;
            handleRequestLine(conn, line);
        }
    } catch (const NetError &) {
        // Peer vanished mid-read; nothing to answer.
    }
    conn->open.store(false, std::memory_order_relaxed);
    connectionsOpen_.set(static_cast<double>(
        openConnections_.fetch_sub(1, std::memory_order_relaxed) -
        1));
    obs::EventLog::global().emit(obs::LogLevel::kDebug,
                                 "serve.conn.close");
}

void
InferenceServer::handleRequestLine(
    const std::shared_ptr<Connection> &conn, const std::string &line)
{
    Request req;
    req.conn = conn;
    std::string parseError;
    const std::unique_ptr<JsonValue> doc =
        parseJson(line, parseError);

    if (doc) {
        if (const JsonValue *id = doc->find("id")) {
            if (id->isNumber()) {
                req.idKind = IdKind::kNumber;
                req.idNumber = id->number;
            } else if (id->isString()) {
                req.idKind = IdKind::kString;
                req.idString = id->string;
            }
        }
        if (const JsonValue *scores = doc->find("scores"))
            req.wantScores =
                scores->type == JsonValue::Type::kBool &&
                scores->boolean;
    }

    auto reject = [&](const std::string &message,
                      obs::Counter &counter, const char *event) {
        counter.add();
        obs::EventLog::global().emit(obs::LogLevel::kWarn, event,
                                     {{"error", message}});
        conn->writeLine(errorBody(req.idKind, req.idNumber,
                                  req.idString, message));
    };

    if (!doc) {
        reject("bad JSON: " + parseError, requestsBad_,
               "serve.request.bad");
        return;
    }
    const JsonValue *features = doc->find("features");
    if (features == nullptr || !features->isArray()) {
        reject("missing \"features\" array", requestsBad_,
               "serve.request.bad");
        return;
    }
    req.features.reserve(features->array.size());
    for (const JsonValue &v : features->array) {
        if (!v.isNumber()) {
            reject("non-numeric feature", requestsBad_,
                   "serve.request.bad");
            return;
        }
        req.features.push_back(v.number);
    }
    if (req.features.size() != expectedFeatures_) {
        reject("expected " + std::to_string(expectedFeatures_) +
                   " features, got " +
                   std::to_string(req.features.size()),
               requestsBad_, "serve.request.bad");
        return;
    }

    req.enqueueNs = util::Timer::processNanoseconds();
    {
        const util::MutexLock lock(queueMutex_);
        if (queue_.size() >= config_.queueCapacity) {
            reject("overloaded", requestsOverload_,
                   "serve.overload");
            return;
        }
        queue_.push_back(std::move(req));
        queueDepth_.set(static_cast<double>(queue_.size()));
    }
    queueCv_.notifyOne();
}

void
InferenceServer::workerLoop(std::size_t workerIndex)
{
    WorkerState &state = *workerStates_[workerIndex];
    while (true) {
        std::vector<Request> batch;
        {
            const util::MutexLock lock(queueMutex_);
            // Explicit wait loop (not a predicate lambda) so the
            // analysis sees queue_ read with queueMutex_ held.
            while (queue_.empty() &&
                   !stopWorkers_.load(std::memory_order_acquire))
                queueCv_.wait(queueMutex_);
            if (queue_.empty() &&
                stopWorkers_.load(std::memory_order_acquire))
                return;
            const std::uint64_t gatherStart =
                util::Timer::processNanoseconds();
            batch.push_back(std::move(queue_.front()));
            queue_.pop_front();
            const auto deadline =
                std::chrono::steady_clock::now() +
                std::chrono::microseconds(config_.batchMaxDelayUs);
            while (batch.size() < config_.batchMaxSize) {
                if (!queue_.empty()) {
                    batch.push_back(std::move(queue_.front()));
                    queue_.pop_front();
                    continue;
                }
                if (stopWorkers_.load(std::memory_order_acquire))
                    break;
                if (queueCv_.waitUntil(queueMutex_, deadline) ==
                    std::cv_status::timeout)
                    break;
            }
            queueDepth_.set(static_cast<double>(queue_.size()));
            batchGatherLatency_.record(
                util::Timer::processNanoseconds() - gatherStart);
        }
        processBatch(batch, state);
    }
}

void
InferenceServer::processBatch(std::vector<Request> &batch,
                              WorkerState &state)
{
    state.batchSeq.fetch_add(1, std::memory_order_relaxed);
    state.stage.store("predict", std::memory_order_relaxed);
    state.busySinceNs.store(util::Timer::processNanoseconds(),
                            std::memory_order_relaxed);
    batches_.add();
    batchLastSize_.set(static_cast<double>(batch.size()));
    inflight_.set(static_cast<double>(
        inflightRequests_.fetch_add(
            static_cast<std::int64_t>(batch.size()),
            std::memory_order_relaxed) +
        static_cast<std::int64_t>(batch.size())));
    obs::EventLog::global().emit(
        obs::LogLevel::kDebug, "serve.batch",
        {{"size", std::to_string(batch.size())}});
    if (batch.size() > 1) {
        multiBatches_.add();
        batchedRequests_.add(
            static_cast<std::uint64_t>(batch.size()));
    }

    // One batched kernel pass over the whole batch; bit-identical to
    // per-request classifier_.scores() (see Classifier::scoresBatch).
    std::vector<std::span<const double>> rows;
    rows.reserve(batch.size());
    for (const Request &req : batch)
        rows.emplace_back(req.features);
    std::vector<std::vector<double>> batchScores;
    {
        LOOKHD_SPAN("serve.predict", "serve");
        batchScores =
            classifier_.scoresBatch(rows, config_.predictThreads);
    }

    for (std::size_t i = 0; i < batch.size(); ++i) {
        Request &req = batch[i];
        const std::vector<double> &scores = batchScores[i];
        const std::size_t pred = hdc::argmax(scores);
        LOOKHD_QUALITY_MARGIN("serve.predict", scores);

        obs::JsonWriter w;
        w.beginObject();
        writeId(w, req.idKind, req.idNumber, req.idString);
        w.kv("pred", static_cast<std::uint64_t>(pred));
        if (req.wantScores) {
            w.key("scores").beginArray();
            for (const double s : scores)
                w.value(s);
            w.endArray();
        }
        w.endObject();

        // Count before the response write: a client that has read
        // the answer must already see it in requestsServed() and
        // /metrics.
        requestLatency_.record(util::Timer::processNanoseconds() -
                               req.enqueueNs);
        requestsOk_.add();
        state.stage.store("respond", std::memory_order_relaxed);
        req.conn->writeLine(w.str());
        state.stage.store("predict", std::memory_order_relaxed);
    }

    inflight_.set(static_cast<double>(
        inflightRequests_.fetch_sub(
            static_cast<std::int64_t>(batch.size()),
            std::memory_order_relaxed) -
        static_cast<std::int64_t>(batch.size())));
    state.busySinceNs.store(0, std::memory_order_relaxed);
    state.stage.store("idle", std::memory_order_relaxed);
}

void
InferenceServer::metricsLoop()
{
    while (running_.load(std::memory_order_acquire)) {
        TcpStream stream;
        try {
            stream = metricsListener_.accept(100);
        } catch (const NetError &) {
            continue;
        }
        if (!stream.valid())
            continue;
        try {
            std::string requestLine;
            if (!stream.readLine(requestLine))
                continue;
            // Drain headers so the client sees a clean HTTP exchange.
            std::string header;
            while (stream.readLine(header) && !header.empty()) {
            }

            std::string path = "/";
            const std::size_t firstSpace = requestLine.find(' ');
            if (firstSpace != std::string::npos) {
                const std::size_t secondSpace =
                    requestLine.find(' ', firstSpace + 1);
                path = requestLine.substr(
                    firstSpace + 1,
                    secondSpace == std::string::npos
                        ? std::string::npos
                        : secondSpace - firstSpace - 1);
            }

            std::string status = "200 OK";
            std::string contentType =
                "text/plain; version=0.0.4; charset=utf-8";
            std::string body;
            if (path == "/metrics") {
                body = obs::renderPrometheus(
                    obs::MetricRegistry::global().snapshot(),
                    obs::spanRollup());
            } else if (path == "/metrics.json") {
                contentType = "application/json";
                body = obs::snapshotJson(
                           obs::MetricRegistry::global()) +
                       "\n";
            } else if (path == "/healthz") {
                contentType = "text/plain; charset=utf-8";
                body = "ok\n";
            } else {
                status = "404 Not Found";
                contentType = "text/plain; charset=utf-8";
                body = "not found\n";
            }

            std::string response = "HTTP/1.0 " + status + "\r\n";
            response += "Content-Type: " + contentType + "\r\n";
            response += "Content-Length: " +
                        std::to_string(body.size()) + "\r\n";
            response += "Connection: close\r\n\r\n";
            response += body;
            stream.sendAll(response);
        } catch (const NetError &) {
            // Scraper hung up mid-exchange; next scrape will do.
        }
    }
}

void
InferenceServer::watchdogLoop()
{
    if (config_.watchdogDeadlineMs == 0)
        return;
    const auto period =
        std::chrono::milliseconds(std::max<std::uint64_t>(
            config_.watchdogPeriodMs, 1));
    // The mutex exists only to satisfy the wait protocol: nothing is
    // guarded by it, the timed sleep (interruptible by stop()) is
    // the point.
    util::Mutex sleepMutex;
    const util::MutexLock sleepLock(sleepMutex);
    while (running_.load(std::memory_order_acquire)) {
        watchdogCv_.waitFor(sleepMutex, period);
        const std::uint64_t now = util::Timer::processNanoseconds();
        for (std::size_t i = 0; i < workerStates_.size(); ++i) {
            WorkerState &state = *workerStates_[i];
            const std::uint64_t busySince =
                state.busySinceNs.load(std::memory_order_relaxed);
            if (busySince == 0)
                continue;
            const std::uint64_t elapsedNs = now - busySince;
            if (elapsedNs <
                config_.watchdogDeadlineMs * 1'000'000ULL)
                continue;
            const std::uint64_t batch =
                state.batchSeq.load(std::memory_order_relaxed);
            if (batch == state.lastTrippedBatch)
                continue; // already reported this stuck batch
            state.lastTrippedBatch = batch;
            watchdogTrips_.add();
            obs::EventLog::global().emit(
                obs::LogLevel::kError, "serve.watchdog.trip",
                {{"worker", std::to_string(i)},
                 {"stage",
                  std::string(state.stage.load(
                      std::memory_order_relaxed))},
                 {"elapsed_ms",
                  std::to_string(elapsedNs / 1'000'000ULL)},
                 {"batch", std::to_string(batch)},
                 {"span_rollup", rollupDump()}});
        }
    }
}

} // namespace lookhd::serve
