/**
 * @file
 * Multi-threaded batched-inference server over plain TCP.
 *
 * The minimal serving harness that makes the live telemetry
 * meaningful: a request port speaking newline-delimited JSON and a
 * scrape port exposing the Prometheus snapshot.
 *
 * Request port protocol (one JSON object per line):
 *
 *   -> {"id":7,"features":[0.5,1.25,3.0]}
 *   <- {"id":7,"pred":1}
 *   -> {"id":"a","features":[...],"scores":true}
 *   <- {"id":"a","pred":1,"scores":[-0.1,0.9]}
 *   <- {"id":9,"error":"expected 3 features, got 2"}   (bad request)
 *
 * Threading: one acceptor, one reader thread per connection feeding
 * a bounded request queue, a worker pool popping batches (up to
 * batchMaxSize requests or batchMaxDelayUs of waiting, whichever
 * first), one scrape-port thread, one watchdog thread. A full queue
 * rejects at the reader with an "overloaded" error response instead
 * of back-pressuring the socket, so queue depth is bounded and
 * visible in /metrics.
 *
 * Scrape port (HTTP/1.0, close-per-request, GET only - other
 * methods get 405):
 *   GET /metrics         Prometheus text format v0.0.4 of the global
 *                        registry + span rollup (obs/exposition.hpp)
 *   GET /metrics.json    the JSON snapshot document
 *   GET /healthz         readiness: 200 "ok" when serving, 503 with
 *                        a JSON {"status","reason"} body while
 *                        draining, saturated, recently overloaded,
 *                        stalled, or in violation of an SLO/drift
 *                        rule (obs/health.hpp)
 *   GET /livez           liveness: 200 while the scrape loop runs
 *   GET /debug/health    full verdict: protocol state, per-rule
 *                        burn rates, drift scores as JSON
 *   GET /debug/windows?s=N  recent window series (last N seconds)
 *   GET /debug/requests  recent slow/sampled requests with their
 *                        full stage breakdown (obs/reqtrace.hpp)
 *   GET /debug/inflight  currently queued + scoring requests, aged
 *   GET /debug/trace?ms=N  time-boxed Chrome trace_event capture of
 *                        live server spans (blocks the scrape
 *                        thread for N ms by design)
 *   GET /debug/profile?seconds=N&hz=H[&format=speedscope]
 *                        blocking CPU-profile capture
 *                        (obs/profiler.hpp): collapsed stacks as
 *                        text/plain by default, speedscope JSON
 *                        with format=speedscope; 503 while another
 *                        profiling session is running, 404 when
 *                        the profiler is compiled out
 *
 * Request tracing: every request carries an obs::RequestContext
 * (128-bit trace id from the request's `trace` field or generated
 * server-side, echoed in the response) and stamps one duration per
 * pipeline stage (parse/queue/batch_form/score/serialize/write).
 * Stage durations feed per-stage histograms, exemplars on the
 * request-latency histogram, and the SlowRequestLog. Under
 * -DLOOKHD_OBS=OFF id generation and capture compile out; echo of a
 * client-supplied trace id is protocol, so it stays.
 *
 * Telemetry: request accounting (serve.* counters/gauges and the
 * serve.request.latency histogram) writes the metric registry
 * directly - it is the product of this layer, not optional
 * instrumentation, so /metrics stays meaningful even in
 * -DLOOKHD_OBS=OFF builds where the macro sites compile out.
 * Request-scope events (start/shutdown, watchdog trips, overload)
 * land in obs::EventLog::global().
 *
 * The watchdog thread checks every worker's in-flight batch against
 * deadline; a stall logs a watchdog.trip event carrying the
 * worker's current stage and a span-rollup dump (once per stuck
 * batch), and increments serve.watchdog.trips.
 */

#ifndef LOOKHD_SERVE_SERVER_HPP
#define LOOKHD_SERVE_SERVER_HPP

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "lookhd/classifier.hpp"
#include "obs/health.hpp"
#include "obs/reqtrace.hpp"
#include "serve/net.hpp"
#include "util/thread_annotations.hpp"

namespace lookhd::obs {
class Counter;
class Gauge;
class LatencyHistogram;
} // namespace lookhd::obs

namespace lookhd::serve {

/** Tunables of one InferenceServer. */
struct ServeConfig
{
    /** Request port; 0 = kernel-assigned (read back via port()). */
    std::uint16_t port = 0;

    /** Scrape port; 0 = kernel-assigned (metricsPort()). */
    std::uint16_t metricsPort = 0;

    /** Inference worker threads. */
    std::size_t workers = 2;

    /** Max requests dispatched to a worker as one batch. */
    std::size_t batchMaxSize = 16;

    /**
     * Threads each worker spends on one batch's predictions
     * (Classifier::scoresBatch): 1 = the worker thread alone
     * (default), 0 = one per hardware thread. Results are identical
     * for every value; this only trades worker-level for intra-batch
     * parallelism.
     */
    std::size_t predictThreads = 1;

    /** Max wait to fill a batch beyond its first request. */
    std::uint64_t batchMaxDelayUs = 200;

    /**
     * Serving arithmetic: "auto" (int8 when the loaded model carries
     * quantized forms, float64 otherwise), or an explicit "float64",
     * "int8", "binary". Explicit quantized choices build the forms
     * on demand when the model lacks them. The resolved choice is
     * exported as the "precision" label on /metrics and decides
     * which kernel path Classifier::scoresBatch takes per batch.
     */
    std::string precision = "auto";

    /** Bounded request queue; beyond this, reject as overloaded. */
    std::size_t queueCapacity = 1024;

    /** Worker-stall threshold for the watchdog. 0 disables. */
    std::uint64_t watchdogDeadlineMs = 2000;

    /** Watchdog poll period. */
    std::uint64_t watchdogPeriodMs = 100;

    /**
     * End-to-end latency (parse start to response written) beyond
     * which a request is captured in the SlowRequestLog. 0 disables
     * threshold capture.
     */
    std::uint64_t slowThresholdNs = 100'000'000;

    /** Also capture every Nth request ("sampled"). 0 disables. */
    std::uint64_t sampleEveryN = 0;

    /** SlowRequestLog records retained per writer thread. */
    std::size_t slowLogCapacity = 256;

    /**
     * Artificial per-batch delay added to the scoring stage. A load-
     * testing aid (simulates heavier models so overload and
     * latency-SLO scenarios reproduce deterministically); 0 in
     * production.
     */
    std::uint64_t scoreDelayNs = 0;

    /**
     * After an overload rejection, /healthz stays unready this long
     * even once the queue has space again: a load balancer polling
     * between bursts should keep the instance drained, not flap.
     * 0 disables the latch (only instantaneous saturation counts).
     */
    std::uint64_t overloadHoldMs = 2000;

    /**
     * Windowed health engine (sampler cadence, SLO objectives, drift
     * detection; see obs/health.hpp). The sampler thread runs when
     * health.windowSeconds > 0 and the obs layer is compiled in;
     * protocol-level /healthz readiness (drain/overload/stall) works
     * regardless.
     */
    obs::HealthConfig health;

    /**
     * Test-only hook, run at the start of every batch with the batch
     * size (on the worker thread, while the watchdog sees the worker
     * busy). Lets tests stall a worker deterministically.
     */
    std::function<void(std::size_t)> batchHook;
};

/**
 * The server. start() spins up the threads and returns; stop()
 * (also run by the destructor) stops accepting, drains the queue,
 * answers what it can, and joins everything.
 */
class InferenceServer
{
  public:
    InferenceServer(Classifier classifier, ServeConfig config);
    ~InferenceServer();

    InferenceServer(const InferenceServer &) = delete;
    InferenceServer &operator=(const InferenceServer &) = delete;

    /** Bind both ports and launch the thread set. @throws NetError. */
    void start();

    /** Graceful shutdown; idempotent. */
    void stop();

    bool running() const
    {
        return running_.load(std::memory_order_acquire);
    }

    /** Bound request port. @pre start() succeeded. */
    std::uint16_t port() const { return requestListener_.port(); }

    /** Bound scrape port. @pre start() succeeded. */
    std::uint16_t metricsPort() const
    {
        return metricsListener_.port();
    }

    /** Requests answered successfully since start. */
    std::uint64_t requestsServed() const;

    /** The slow/sampled request capture ring (for tests/flushing). */
    obs::SlowRequestLog &slowLog() { return slowLog_; }

    /** One /healthz readiness verdict. */
    struct Readiness
    {
        bool ready = true;
        /** "ok" | "draining" | "queue_saturated" | "overloaded" |
         * "watchdog_stalled" | a HealthMonitor reason. */
        std::string reason = "ok";
    };

    /**
     * Compute the current readiness verdict (highest-priority
     * violation wins: draining > queue_saturated > overloaded >
     * watchdog_stalled > rule-engine reasons), update the
     * serve.health.ready gauge, and log transitions. This is what
     * GET /healthz serves; public for tests.
     */
    Readiness checkReadiness();

    /** Windowed health engine; null when disabled or compiled out. */
    obs::HealthMonitor *healthMonitor() { return health_.get(); }

  private:
    struct Connection;
    struct Request;
    struct WorkerState;

    void acceptLoop();
    void connectionLoop(std::shared_ptr<Connection> conn);
    void workerLoop(std::size_t workerIndex);
    void metricsLoop();
    void watchdogLoop();
    void samplerLoop();

    /** Parse + validate one request line; enqueue or answer error. */
    void handleRequestLine(const std::shared_ptr<Connection> &conn,
                           const std::string &line);
    void processBatch(std::vector<Request> &batch,
                      WorkerState &state);

    /** /debug endpoint bodies, built on the scrape thread. */
    std::string debugRequestsBody() const;
    std::string debugInflightBody();
    std::string debugTraceBody(const std::string &query);
    std::string debugHealthBody();
    std::string debugWindowsBody(const std::string &query);
    /** Blocking CPU-profile capture; sets @p status / @p contentType
     * per outcome and format (collapsed = text/plain, speedscope =
     * application/json, busy = 503). */
    std::string debugProfileBody(const std::string &query,
                                 std::string &status,
                                 std::string &contentType);

    Classifier classifier_;
    const ServeConfig config_;
    std::size_t expectedFeatures_ = 0;

    TcpListener requestListener_;
    TcpListener metricsListener_;

    std::atomic<bool> running_{false};
    std::atomic<bool> started_{false};
    std::atomic<bool> stopping_{false};
    /** Set after readers are joined: workers drain, then exit. */
    std::atomic<bool> stopWorkers_{false};
    std::atomic<std::int64_t> openConnections_{0};
    std::atomic<std::int64_t> inflightRequests_{0};
    /** Wakes the watchdog out of its poll sleep on stop(); the
     * watchdog waits on a loop-local mutex (nothing is guarded by
     * it, the sleep is the point). */
    util::CondVar watchdogCv_;
    /** Same interruptible-sleep pattern for the window sampler. */
    util::CondVar samplerCv_;
    /** processNanoseconds() of the last overload rejection; feeds
     * the overloadHoldMs readiness latch. 0 = never. */
    std::atomic<std::uint64_t> lastOverloadNs_{0};
    /** Last readiness published, for transition logging. */
    std::atomic<bool> wasReady_{true};

    std::thread acceptThread_;
    std::thread metricsThread_;
    std::thread watchdogThread_;
    std::thread samplerThread_;
    std::vector<std::thread> workerThreads_;

    util::Mutex connectionsMutex_;
    std::vector<std::shared_ptr<Connection>> connections_
        LOOKHD_GUARDED_BY(connectionsMutex_);
    /** Reader threads, reaped in stop(): swapped out under the mutex
     * and joined outside it (joining under a lock a reader might
     * want is the classic shutdown deadlock). */
    std::vector<std::thread> connectionThreads_
        LOOKHD_GUARDED_BY(connectionsMutex_);

    util::Mutex queueMutex_;
    util::CondVar queueCv_;
    std::deque<Request> queue_ LOOKHD_GUARDED_BY(queueMutex_);

    std::vector<std::unique_ptr<WorkerState>> workerStates_;

    /** Constructed in start() when windows are compiled in and
     * config_.health.windowSeconds > 0; kept after stop() so the
     * final state stays inspectable. */
    std::unique_ptr<obs::HealthMonitor> health_;

    obs::SlowRequestLog slowLog_;
    /** 1-in-N sampling position (config_.sampleEveryN). */
    std::atomic<std::uint64_t> sampleCounter_{0};
    /** Per-stage latency histograms, ReqStage-indexed; null in
     * -DLOOKHD_OBS=OFF builds (stage timing compiles out). */
    std::array<obs::LatencyHistogram *, obs::kReqStageCount>
        stageLatency_{};

    // Cached registry handles (resolved once; see obs/metrics.hpp).
    obs::Counter &requestsOk_;
    obs::Counter &requestsBad_;
    obs::Counter &requestsOverload_;
    obs::Counter &batches_;
    obs::Counter &multiBatches_;
    obs::Counter &batchedRequests_;
    obs::Counter &quantizedRequests_;
    obs::Counter &connectionsTotal_;
    obs::Counter &watchdogTrips_;
    obs::Counter &slowCaptured_;
    obs::Gauge &queueDepth_;
    obs::Gauge &inflight_;
    obs::Gauge &connectionsOpen_;
    obs::Gauge &batchLastSize_;
    obs::Gauge &healthReady_;
    obs::LatencyHistogram &requestLatency_;
    obs::LatencyHistogram &batchGatherLatency_;
};

} // namespace lookhd::serve

#endif // LOOKHD_SERVE_SERVER_HPP
