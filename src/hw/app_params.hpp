/**
 * @file
 * Workload parameters consumed by the hardware cost models.
 */

#ifndef LOOKHD_HW_APP_PARAMS_HPP
#define LOOKHD_HW_APP_PARAMS_HPP

#include <algorithm>
#include <cstddef>

#include "util/check.hpp"

namespace lookhd::hw {

/**
 * Everything a cost model needs to know about one classification
 * workload and its HDC configuration. Derived quantities (chunk count,
 * address-space size) are provided as methods so every model counts
 * them the same way.
 */
struct AppParams
{
    std::size_t n = 0;   ///< Features per data point.
    std::size_t q = 0;   ///< Quantization levels.
    std::size_t r = 5;   ///< LookHD chunk size.
    std::size_t k = 0;   ///< Classes.
    std::size_t dim = 2000; ///< Hypervector dimensionality D.

    std::size_t trainSamples = 0;

    /**
     * Average mispredictions corrected per retraining epoch (the paper
     * reports retraining cost "considering the average number of
     * updates during the entire training iterations").
     */
    std::size_t updatesPerEpoch = 0;

    /** Compressed hypervectors (1 unless grouped compression). */
    std::size_t modelGroups = 1;

    /**
     * Precondition check used by every cost-model entry point: a
     * workload must have features, classes, at least two quantization
     * levels, a nonzero chunk size and a nonzero dimensionality.
     */
    void
    validate() const
    {
        LOOKHD_CHECK(n > 0, "app needs at least one feature");
        LOOKHD_CHECK(q >= 2, "app needs at least 2 quantization levels");
        LOOKHD_CHECK(r > 0, "chunk size must be nonzero");
        LOOKHD_CHECK(k > 0, "app needs at least one class");
        LOOKHD_CHECK(dim > 0, "dimensionality must be nonzero");
        LOOKHD_CHECK(modelGroups > 0, "model group count must be nonzero");
    }

    /** Chunks m = ceil(n / r). */
    std::size_t m() const { return (n + r - 1) / r; }

    /** Address space q^r, saturating at 2^63. */
    double
    addressSpace() const
    {
        double space = 1.0;
        for (std::size_t i = 0; i < r; ++i)
            space *= static_cast<double>(q);
        return space;
    }

    /** Average training samples per class. */
    double
    samplesPerClass() const
    {
        return k ? static_cast<double>(trainSamples) /
                       static_cast<double>(k)
                 : 0.0;
    }

    /**
     * Counter rows with nonzero count per (class, chunk): bounded both
     * by the address space and by how many samples the class saw.
     * This is what the weighted accumulation actually touches.
     */
    double
    activeRowsPerClassChunk() const
    {
        return std::min(addressSpace(), samplesPerClass());
    }

    /** Bits per pre-stored chunk-hypervector element (range [-r, r]). */
    std::size_t
    chunkElemBits() const
    {
        std::size_t bits = 1;
        while ((std::size_t{1} << bits) < 2 * r + 1)
            ++bits;
        return bits;
    }
};

} // namespace lookhd::hw

#endif // LOOKHD_HW_APP_PARAMS_HPP
