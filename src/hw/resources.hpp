/**
 * @file
 * Hardware platform descriptions for the analytical cost models.
 *
 * The paper evaluates on a Kintex-7 KC705 FPGA (Vivado, 5 ns clock),
 * an ARM Cortex-A53 CPU, and an NVIDIA GTX 1080 GPU. Those platforms
 * are represented here by their published resource budgets and
 * operating points; the models in fpga_model/cpu_model/gpu_model turn
 * operation counts into cycles, time and energy against these budgets.
 */

#ifndef LOOKHD_HW_RESOURCES_HPP
#define LOOKHD_HW_RESOURCES_HPP

#include <cstddef>
#include <string>

namespace lookhd::hw {

/** FPGA device resource budget and operating point. */
struct FpgaDevice
{
    std::string name;
    std::size_t luts;
    std::size_t ffs;
    std::size_t dsps;
    std::size_t bram36; ///< Number of 36 Kb block RAMs.
    double clockNs;     ///< Cycle time in nanoseconds.

    double clockHz() const { return 1e9 / clockNs; }
    /** Total BRAM capacity in bytes. */
    std::size_t bramBytes() const { return bram36 * 36 * 1024 / 8; }
};

/** The paper's FPGA: Kintex-7 KC705 (XC7K325T) at 5 ns. */
FpgaDevice kintex7Kc705();

/** Embedded CPU operating point. */
struct CpuDevice
{
    std::string name;
    double clockHz;
    /** Effective integer ops per cycle (SIMD-aware average). */
    double opsPerCycle;
    /** Active power in watts. */
    double activePowerW;
    /** L1-resident bytes (model size beyond this pays slow accesses). */
    std::size_t cacheBytes;
};

/** The paper's embedded CPU: ARM Cortex-A53. */
CpuDevice armCortexA53();

/** GPU operating point. */
struct GpuDevice
{
    std::string name;
    /** Sustained int32 throughput in ops/s for streaming kernels. */
    double sustainedOpsPerSec;
    /** Per-launch fixed overhead in seconds (kernel + transfer). */
    double launchOverheadS;
    double activePowerW;
};

/** The paper's GPU: NVIDIA GTX 1080 running the TensorFlow HDC. */
GpuDevice nvidiaGtx1080();

/** FPGA resource usage snapshot (Fig. 16). */
struct Utilization
{
    std::size_t luts = 0;
    std::size_t ffs = 0;
    std::size_t dsps = 0;
    std::size_t bram36 = 0;

    /** Fractions of the device budget, each in [0, 1+]. */
    double lutFrac(const FpgaDevice &dev) const;
    double ffFrac(const FpgaDevice &dev) const;
    double dspFrac(const FpgaDevice &dev) const;
    double bramFrac(const FpgaDevice &dev) const;

    /** Whether the design fits the device. */
    bool fits(const FpgaDevice &dev) const;
};

} // namespace lookhd::hw

#endif // LOOKHD_HW_RESOURCES_HPP
