/**
 * @file
 * Analytical GPU cost model (NVIDIA GTX 1080 running the TensorFlow
 * HDC implementation of Sec. VI-F / Table III).
 *
 * A GPU executes the baseline HDC kernels at very high streaming
 * throughput but burns two orders of magnitude more power than the
 * embedded platforms and pays per-launch overheads. Table III's
 * comparison - GPU beats baseline FPGA on raw speed, LookHD FPGA beats
 * GPU on both speed (by removing work) and energy (by two orders of
 * magnitude) - follows from exactly those two properties.
 */

#ifndef LOOKHD_HW_GPU_MODEL_HPP
#define LOOKHD_HW_GPU_MODEL_HPP

#include "hw/app_params.hpp"
#include "hw/energy.hpp"
#include "hw/resources.hpp"

namespace lookhd::hw {

/** GPU latency/energy model for the baseline HDC kernels. */
class GpuModel
{
  public:
    explicit GpuModel(GpuDevice device = nvidiaGtx1080(),
                      std::size_t batch = 1024);

    const GpuDevice &device() const { return device_; }

    /** Full baseline training pass (encode + accumulate). */
    Cost baselineTrain(const AppParams &app) const;

    /** One inference query, amortized over the configured batch. */
    Cost baselineInferQuery(const AppParams &app) const;

  private:
    Cost fromOps(double ops, double launches) const;

    GpuDevice device_;
    std::size_t batch_;
};

} // namespace lookhd::hw

#endif // LOOKHD_HW_GPU_MODEL_HPP
