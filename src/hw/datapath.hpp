/**
 * @file
 * Datapath cost parameters shared by the analytical FPGA model
 * (hw::FpgaModel) and the cycle-approximate pipeline simulator
 * (hwsim). Keeping them in one struct guarantees the two estimators
 * disagree only because of their abstraction level, never because of
 * divergent constants.
 */

#ifndef LOOKHD_HW_DATAPATH_HPP
#define LOOKHD_HW_DATAPATH_HPP

#include <cstddef>

#include "hw/resources.hpp"

namespace lookhd::hw {

/** Per-primitive datapath costs of the FPGA designs (Sec. V). */
struct DatapathParams
{
    /** Fraction of the LUT budget usable as datapath (routing). */
    double lutDatapathFraction = 0.8;

    /** LUTs consumed per bit of a carry-chain adder lane. */
    double lutsPerAdderBit = 1.5;

    /** LUT-ops per 8-bit comparator in the quantization stage. */
    double lutOpsPerCompare = 8.0;

    /**
     * LUT-ops per narrow (counter x chunk-element) multiply-
     * accumulate; small because chunk elements are ~4 bits and the
     * weighted accumulation also borrows DSPs (Sec. V-A).
     */
    double lutOpsPerNarrowMac = 3.0;

    /** DDR3 bandwidth in bytes per FPGA cycle (~12.8 GB/s @200MHz). */
    double dramBytesPerCycle = 64.0;

    /** LUT-op throughput per cycle for a given device LUT count. */
    double
    lutOpsPerCycle(std::size_t device_luts) const
    {
        return lutDatapathFraction * static_cast<double>(device_luts);
    }
};

/** Accumulator width for aggregation sums over @p items terms. */
inline std::size_t
accumulatorBits(std::size_t items)
{
    std::size_t bits = 1;
    while ((std::size_t{1} << bits) < items + 1)
        ++bits;
    return bits + 1; // sign
}

/**
 * Associative-search window width d': largest power of two <=
 * DSPs / lanes, capped at 256 (Sec. V-B).
 */
inline std::size_t
searchWindow(const FpgaDevice &device, std::size_t lanes)
{
    if (lanes == 0)
        lanes = 1;
    const std::size_t budget = device.dsps / lanes;
    std::size_t window = 1;
    while (window * 2 <= budget && window < 256)
        window *= 2;
    return window;
}

/** Aggregate BRAM port bandwidth: two 4-byte ports per BRAM36. */
inline double
bramBandwidth(const FpgaDevice &device)
{
    return static_cast<double>(device.bram36) * 2.0 * 4.0;
}

} // namespace lookhd::hw

#endif // LOOKHD_HW_DATAPATH_HPP
