/**
 * @file
 * Per-operation energy constants and the Cost record produced by the
 * hardware models.
 *
 * Constants are representative 28 nm figures (order-of-magnitude
 * correct); the reproduction targets efficiency *ratios* between
 * designs on the same device, which depend on operation counts far
 * more than on the absolute picojoules chosen here.
 */

#ifndef LOOKHD_HW_ENERGY_HPP
#define LOOKHD_HW_ENERGY_HPP

#include <cstddef>

namespace lookhd::hw {

/** Dynamic energy per primitive operation, in joules. */
struct EnergyTable
{
    double lutOpJ = 0.2e-12;    ///< One LUT-level logic op (add slice).
    double dspMacJ = 4.5e-12;   ///< One DSP multiply-accumulate.
    double bramReadJ = 2.5e-12; ///< One BRAM byte read.
    double regOpJ = 0.15e-12;   ///< One register/FF update.
    double staticPowerW = 1.8;  ///< FPGA static + clocking power.
};

/** Default energy table used by the FPGA model. */
EnergyTable defaultEnergyTable();

/** Latency/energy outcome of a modeled task. */
struct Cost
{
    double cycles = 0.0;
    double seconds = 0.0;
    double dynamicJ = 0.0;
    double staticJ = 0.0;

    double energyJ() const { return dynamicJ + staticJ; }

    /** Energy-delay product (Fig. 15b's metric). */
    double edp() const { return energyJ() * seconds; }

    /** Component-wise sum of two costs (sequential composition). */
    Cost operator+(const Cost &other) const;
    Cost &operator+=(const Cost &other);

    /** Cost of running this task @p times sequentially. */
    Cost scaled(double times) const;
};

} // namespace lookhd::hw

#endif // LOOKHD_HW_ENERGY_HPP
