#include "hw/cpu_model.hpp"

#include <algorithm>
#include <cmath>

namespace lookhd::hw {

namespace {

/** Expected distinct chunk addresses per class (see fpga_model.cpp). */
double
expectedActiveRows(double space, double samples)
{
    if (space <= 0.0 || samples <= 0.0)
        return 0.0;
    const double frac =
        -std::expm1(samples * std::log1p(-1.0 / space));
    return std::min(space * frac, samples);
}

} // namespace

CpuModel::CpuModel(CpuDevice device, CpuKernelCosts costs)
    : device_(std::move(device)), costs_(costs)
{
}

Cost
CpuModel::fromCycles(double cycles) const
{
    Cost cost;
    cost.cycles = cycles;
    cost.seconds = cycles / device_.clockHz;
    cost.dynamicJ = device_.activePowerW * cost.seconds;
    cost.staticJ = 0.0; // folded into active power
    return cost;
}

double
CpuModel::baselineEncodeCycles(const AppParams &app) const
{
    const double n = static_cast<double>(app.n);
    const double d = static_cast<double>(app.dim);
    return n * costs_.quantizePerFeature + n * d * costs_.encodeAdd;
}

double
CpuModel::baselineSearchCycles(const AppParams &app) const
{
    return static_cast<double>(app.k) *
           static_cast<double>(app.dim) * costs_.searchMac;
}

double
CpuModel::lookhdEncodeCycles(const AppParams &app) const
{
    const double n = static_cast<double>(app.n);
    const double d = static_cast<double>(app.dim);
    const double m = static_cast<double>(app.m());
    // Quantize, fetch m table rows, bind with P and aggregate: two
    // element passes per chunk (load+bind, add).
    return n * costs_.quantizePerFeature +
           m * d * (costs_.encodeAdd + costs_.unbindAdd);
}

double
CpuModel::lookhdSearchCycles(const AppParams &app) const
{
    const double d = static_cast<double>(app.dim);
    // One real MAC pass per compressed group plus a cheap
    // sign-resolved accumulation per class.
    return static_cast<double>(app.modelGroups) * d *
               costs_.searchMac +
           static_cast<double>(app.k) * d * costs_.unbindAdd;
}

Cost
CpuModel::baselineTrain(const AppParams &app) const
{
    app.validate();
    const double d = static_cast<double>(app.dim);
    const double per_sample =
        baselineEncodeCycles(app) + d * costs_.updateAdd;
    return fromCycles(per_sample *
                      static_cast<double>(app.trainSamples));
}

Cost
CpuModel::baselineInferQuery(const AppParams &app) const
{
    app.validate();
    return fromCycles(baselineEncodeCycles(app) +
                      baselineSearchCycles(app));
}

Cost
CpuModel::baselineRetrainEpoch(const AppParams &app) const
{
    app.validate();
    const double d = static_cast<double>(app.dim);
    double cycles =
        (baselineEncodeCycles(app) + baselineSearchCycles(app)) *
        static_cast<double>(app.trainSamples);
    cycles += 2.0 * d * costs_.updateAdd *
              static_cast<double>(app.updatesPerEpoch);
    return fromCycles(cycles);
}

double
CpuModel::baselineTrainEncodingFraction(const AppParams &app) const
{
    app.validate();
    const double d = static_cast<double>(app.dim);
    const double enc = baselineEncodeCycles(app);
    return enc / (enc + d * costs_.updateAdd);
}

double
CpuModel::baselineInferSearchFraction(const AppParams &app) const
{
    app.validate();
    const double enc = baselineEncodeCycles(app);
    const double search = baselineSearchCycles(app);
    return search / (enc + search);
}

Cost
CpuModel::lookhdTrain(const AppParams &app) const
{
    app.validate();
    const double d = static_cast<double>(app.dim);
    const double m = static_cast<double>(app.m());
    const double k = static_cast<double>(app.k);
    const double s = static_cast<double>(app.trainSamples);

    // Streaming: quantize + counter increments, no hypervector work.
    const double per_sample =
        static_cast<double>(app.n) * costs_.quantizePerFeature +
        m * costs_.counterIncrement;

    // Finalization: weighted accumulation over active counter rows
    // plus one chunk-aggregation pass per class.
    const double rows = expectedActiveRows(app.addressSpace(),
                                           app.samplesPerClass());
    const double finalize = k * m * rows * d * costs_.weightedMac +
                            k * m * d * costs_.unbindAdd;

    return fromCycles(per_sample * s + finalize);
}

Cost
CpuModel::lookhdInferQuery(const AppParams &app) const
{
    app.validate();
    return fromCycles(lookhdEncodeCycles(app) +
                      lookhdSearchCycles(app));
}

Cost
CpuModel::lookhdRetrainEpoch(const AppParams &app) const
{
    app.validate();
    const double d = static_cast<double>(app.dim);
    double cycles =
        (lookhdEncodeCycles(app) + lookhdSearchCycles(app)) *
        static_cast<double>(app.trainSamples);
    cycles += 2.0 * d * costs_.updateAdd *
              static_cast<double>(app.updatesPerEpoch);
    return fromCycles(cycles);
}

} // namespace lookhd::hw
