#include "hw/gpu_model.hpp"

namespace lookhd::hw {

GpuModel::GpuModel(GpuDevice device, std::size_t batch)
    : device_(std::move(device)), batch_(batch ? batch : 1)
{
}

Cost
GpuModel::fromOps(double ops, double launches) const
{
    Cost cost;
    cost.seconds = ops / device_.sustainedOpsPerSec +
                   launches * device_.launchOverheadS;
    cost.cycles = 0.0; // not meaningful across SMs
    cost.dynamicJ = device_.activePowerW * cost.seconds;
    cost.staticJ = 0.0;
    return cost;
}

Cost
GpuModel::baselineTrain(const AppParams &app) const
{
    app.validate();
    const double n = static_cast<double>(app.n);
    const double d = static_cast<double>(app.dim);
    const double s = static_cast<double>(app.trainSamples);
    // Encode + class accumulate for every sample; one launch per batch
    // of samples.
    const double ops = s * (n * d + d);
    const double launches =
        s / static_cast<double>(batch_) + 1.0;
    return fromOps(ops, launches);
}

Cost
GpuModel::baselineInferQuery(const AppParams &app) const
{
    app.validate();
    const double n = static_cast<double>(app.n);
    const double d = static_cast<double>(app.dim);
    const double k = static_cast<double>(app.k);
    // Queries processed in batches; per-query share of the launch.
    const double ops = n * d + k * d;
    const double launches = 1.0 / static_cast<double>(batch_);
    return fromOps(ops, launches);
}

} // namespace lookhd::hw
