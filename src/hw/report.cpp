#include "hw/report.hpp"

#include <cstdio>

namespace lookhd::hw {

AppParams
appParamsFor(const data::AppSpec &app, std::size_t dim, std::size_t q,
             std::size_t r, std::size_t groups)
{
    AppParams p;
    p.n = app.numFeatures;
    p.q = q;
    p.r = r;
    p.k = app.numClasses;
    p.dim = dim;
    p.trainSamples = app.trainCount;
    // The paper charges retraining with the average number of updates
    // per epoch; ~15% of the training set mispredicts on average
    // across its applications.
    p.updatesPerEpoch =
        static_cast<std::size_t>(0.15 * static_cast<double>(
                                            app.trainCount));
    p.modelGroups = groups;
    return p;
}

Gain
gainOver(const Cost &baseline, const Cost &ours)
{
    Gain g;
    if (ours.seconds > 0.0)
        g.speedup = baseline.seconds / ours.seconds;
    if (ours.energyJ() > 0.0)
        g.energy = baseline.energyJ() / ours.energyJ();
    return g;
}

std::string
formatSeconds(double seconds)
{
    char buf[64];
    if (seconds < 1e-6)
        std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
    else if (seconds < 1e-3)
        std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
    else if (seconds < 1.0)
        std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
    return buf;
}

std::string
formatJoules(double joules)
{
    char buf[64];
    if (joules < 1e-6)
        std::snprintf(buf, sizeof(buf), "%.1f nJ", joules * 1e9);
    else if (joules < 1e-3)
        std::snprintf(buf, sizeof(buf), "%.2f uJ", joules * 1e6);
    else if (joules < 1.0)
        std::snprintf(buf, sizeof(buf), "%.2f mJ", joules * 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.3f J", joules);
    return buf;
}

std::string
costCell(const Cost &cost)
{
    return formatSeconds(cost.seconds) + " / " +
           formatJoules(cost.energyJ());
}

} // namespace lookhd::hw
