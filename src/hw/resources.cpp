#include "hw/resources.hpp"

namespace lookhd::hw {

FpgaDevice
kintex7Kc705()
{
    // XC7K325T-2FFG900C figures from the Kintex-7 data sheet.
    return {"Kintex-7 KC705 (XC7K325T)", 203800, 407600, 840, 445, 5.0};
}

CpuDevice
armCortexA53()
{
    // 1.2 GHz quad-issue in-order core; ~4 int32 lanes via NEON on
    // streaming kernels; ~1.5 W active for the core cluster.
    return {"ARM Cortex-A53", 1.2e9, 4.0, 1.5, 512 * 1024};
}

GpuDevice
nvidiaGtx1080()
{
    // Sustained integer throughput of the TensorFlow HDC kernels:
    // about half the card's 8.9 TFLOPS peak; kernels launch per batch.
    // Calibrated so GPU training lands ~1.5x above the baseline FPGA,
    // as the paper reports.
    return {"NVIDIA GTX 1080", 4.8e12, 30e-6, 180.0};
}

double
Utilization::lutFrac(const FpgaDevice &dev) const
{
    return static_cast<double>(luts) / static_cast<double>(dev.luts);
}

double
Utilization::ffFrac(const FpgaDevice &dev) const
{
    return static_cast<double>(ffs) / static_cast<double>(dev.ffs);
}

double
Utilization::dspFrac(const FpgaDevice &dev) const
{
    return static_cast<double>(dsps) / static_cast<double>(dev.dsps);
}

double
Utilization::bramFrac(const FpgaDevice &dev) const
{
    return static_cast<double>(bram36) / static_cast<double>(dev.bram36);
}

bool
Utilization::fits(const FpgaDevice &dev) const
{
    return luts <= dev.luts && ffs <= dev.ffs && dsps <= dev.dsps &&
           bram36 <= dev.bram36;
}

} // namespace lookhd::hw
