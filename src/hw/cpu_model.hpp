/**
 * @file
 * Analytical cost model of HDC kernels on an embedded CPU
 * (ARM Cortex-A53 in the paper).
 *
 * The model charges each kernel phase cycles-per-element constants
 * that reflect how the phase maps onto a small in-order SIMD core:
 * bit/byte-wide streaming work vectorizes well, the float
 * multiply-accumulate of the associative search does not. Energy is
 * active power times task time. As with the FPGA model, the target is
 * the *ratios* the paper's figures report.
 */

#ifndef LOOKHD_HW_CPU_MODEL_HPP
#define LOOKHD_HW_CPU_MODEL_HPP

#include "hw/app_params.hpp"
#include "hw/energy.hpp"
#include "hw/resources.hpp"

namespace lookhd::hw {

/** Per-element cycle costs of the CPU kernels. */
struct CpuKernelCosts
{
    /** Baseline encoding aggregation (SIMD int16 add): cycles/elem. */
    double encodeAdd = 0.125;
    /**
     * Associative-search multiply-accumulate: cycles/elem. The search
     * runs on the non-binarized model in floating point, which the
     * little in-order core cannot keep pipelined; this is what makes
     * the search dominate inference for many-class apps (Fig. 2).
     */
    double searchMac = 4.0;
    /** Quantization: cycles per feature (binary search over levels). */
    double quantizePerFeature = 2.0;
    /** Counter increment: cycles per chunk. */
    double counterIncrement = 2.0;
    /** Weighted-accumulation MAC (SIMD int16): cycles/elem. */
    double weightedMac = 0.25;
    /** Sign-resolved accumulate (unbinding): cycles/elem. */
    double unbindAdd = 0.25;
    /** Model update add/sub: cycles/elem. */
    double updateAdd = 0.25;
};

/** CPU latency/energy model. */
class CpuModel
{
  public:
    explicit CpuModel(CpuDevice device = armCortexA53(),
                      CpuKernelCosts costs = {});

    const CpuDevice &device() const { return device_; }

    // --- Baseline HDC ---
    Cost baselineTrain(const AppParams &app) const;
    Cost baselineInferQuery(const AppParams &app) const;
    Cost baselineRetrainEpoch(const AppParams &app) const;

    /** Fraction of baseline training spent in encoding (Fig. 2). */
    double baselineTrainEncodingFraction(const AppParams &app) const;
    /** Fraction of baseline inference spent in the search (Fig. 2). */
    double baselineInferSearchFraction(const AppParams &app) const;

    // --- LookHD ---
    Cost lookhdTrain(const AppParams &app) const;
    Cost lookhdInferQuery(const AppParams &app) const;
    Cost lookhdRetrainEpoch(const AppParams &app) const;

  private:
    Cost fromCycles(double cycles) const;

    /** Cycles to encode one point with the baseline encoder. */
    double baselineEncodeCycles(const AppParams &app) const;
    /** Cycles for one uncompressed associative search. */
    double baselineSearchCycles(const AppParams &app) const;
    /** Cycles to encode one point with the lookup encoder. */
    double lookhdEncodeCycles(const AppParams &app) const;
    /** Cycles for one compressed-model search. */
    double lookhdSearchCycles(const AppParams &app) const;

    CpuDevice device_;
    CpuKernelCosts costs_;
};

} // namespace lookhd::hw

#endif // LOOKHD_HW_CPU_MODEL_HPP
