/**
 * @file
 * Glue between workloads, cost models and the table printers used by
 * the bench binaries.
 */

#ifndef LOOKHD_HW_REPORT_HPP
#define LOOKHD_HW_REPORT_HPP

#include <string>

#include "data/apps.hpp"
#include "hw/app_params.hpp"
#include "hw/energy.hpp"

namespace lookhd::hw {

/**
 * Build the model workload parameters for one paper application.
 *
 * @param app Application spec (n, k, sample counts).
 * @param dim Hypervector dimensionality D.
 * @param q Quantization levels.
 * @param r Chunk size.
 * @param groups Compressed hypervectors in the deployed model.
 */
AppParams appParamsFor(const data::AppSpec &app, std::size_t dim,
                       std::size_t q, std::size_t r,
                       std::size_t groups = 1);

/** Speedup and energy-efficiency gain of @p ours over @p baseline. */
struct Gain
{
    double speedup = 1.0;
    double energy = 1.0;
};

/** baseline.seconds / ours.seconds and the same for energy. */
Gain gainOver(const Cost &baseline, const Cost &ours);

/** Render a cost as "12.3 us / 4.56 uJ" for table cells. */
std::string costCell(const Cost &cost);

/** Human-friendly time with unit (ns/us/ms/s). */
std::string formatSeconds(double seconds);

/** Human-friendly energy with unit (nJ/uJ/mJ/J). */
std::string formatJoules(double joules);

} // namespace lookhd::hw

#endif // LOOKHD_HW_REPORT_HPP
