#include "hw/fpga_model.hpp"

#include "hw/datapath.hpp"

#include <algorithm>
#include <cmath>

namespace lookhd::hw {

namespace {

/** Fraction of the LUT budget usable as datapath (routing margin). */
const DatapathParams kDatapath{};

const double kLutDatapathFraction =
    kDatapath.lutDatapathFraction;

/** LUTs consumed per bit of a carry-chain adder lane. */
const double kLutsPerAdderBit = kDatapath.lutsPerAdderBit;

/** LUT-ops per 8-bit comparator in the quantization stage. */
const double kLutOpsPerCompare = kDatapath.lutOpsPerCompare;

/**
 * LUT-ops per narrow (counter x chunk-element) multiply-accumulate.
 * The chunk elements are only ~4 bits wide, and the weighted
 * accumulation also borrows DSPs (Sec. V-A), so the effective LUT
 * cost per MAC is small.
 */
const double kLutOpsPerNarrowMac =
    kDatapath.lutOpsPerNarrowMac;

/** DDR3 bandwidth in bytes per FPGA cycle (~12.8 GB/s at 200 MHz). */
const double kDramBytesPerCycle = kDatapath.dramBytesPerCycle;

/**
 * Expected number of distinct chunk addresses observed for one class:
 * occupancy of s samples thrown into a table of `space` rows. This is
 * the number of counter rows the weighted accumulation touches.
 */
double
expectedActiveRows(double space, double samples)
{
    if (space <= 0.0 || samples <= 0.0)
        return 0.0;
    // space * (1 - (1 - 1/space)^samples), numerically via expm1.
    const double frac = -std::expm1(
        samples * std::log1p(-1.0 / space));
    return std::min(space * frac, samples);
}

} // namespace

FpgaModel::FpgaModel(FpgaDevice device, EnergyTable energy)
    : device_(std::move(device)), energy_(energy)
{
}

double
FpgaModel::lutLanes(std::size_t bits) const
{
    return kLutDatapathFraction * static_cast<double>(device_.luts) /
           (kLutsPerAdderBit * static_cast<double>(bits));
}

double
FpgaModel::bramBytesPerCycle() const
{
    return bramBandwidth(device_);
}

std::size_t
FpgaModel::searchWindow(std::size_t lanes) const
{
    return hw::searchWindow(device_, lanes);
}

Cost
FpgaModel::makeCost(double cycles, double lut_ops, double dsp_macs,
                    double bram_bytes, double reg_ops) const
{
    Cost cost;
    cost.cycles = cycles;
    cost.seconds = cycles * device_.clockNs * 1e-9;
    cost.dynamicJ = lut_ops * energy_.lutOpJ +
                    dsp_macs * energy_.dspMacJ +
                    bram_bytes * energy_.bramReadJ +
                    reg_ops * energy_.regOpJ;
    cost.staticJ = energy_.staticPowerW * cost.seconds;
    return cost;
}

// ---------------------------------------------------------------------
// Baseline HDC
// ---------------------------------------------------------------------

Cost
FpgaModel::baselineTrain(const AppParams &app) const
{
    app.validate();
    const double n = static_cast<double>(app.n);
    const double d = static_cast<double>(app.dim);
    const double s = static_cast<double>(app.trainSamples);
    const std::size_t acc_bits = accumulatorBits(app.n);

    // Per sample: quantize n features (q comparators each), aggregate
    // n rotated level hypervectors into a D-wide accumulator, then add
    // the encoded point into the class sum.
    const double quant_ops =
        n * static_cast<double>(app.q) * kLutOpsPerCompare;
    const double agg_ops =
        n * d * static_cast<double>(acc_bits) / 8.0 * 8.0; // 1 op/bit
    const double class_ops = d * 32.0 / 8.0;
    const double lut_ops_per_sample = quant_ops + agg_ops + class_ops;

    // Level hypervectors are bipolar: n * D bits read per sample.
    const double bram_per_sample = n * d / 8.0 + d * 4.0;

    const double lut_throughput =
        kLutDatapathFraction * static_cast<double>(device_.luts);
    const double cycles_per_sample =
        std::max(lut_ops_per_sample / lut_throughput,
                 bram_per_sample / bramBytesPerCycle());

    return makeCost(cycles_per_sample * s, lut_ops_per_sample * s, 0.0,
                    bram_per_sample * s, d * s);
}

Cost
FpgaModel::baselineInferQuery(const AppParams &app) const
{
    app.validate();
    const double n = static_cast<double>(app.n);
    const double d = static_cast<double>(app.dim);
    const std::size_t acc_bits = accumulatorBits(app.n);

    // Encoding stage (LUT/BRAM bound).
    const double enc_lut_ops =
        n * static_cast<double>(app.q) * kLutOpsPerCompare +
        n * d * static_cast<double>(acc_bits);
    const double enc_bram = n * d / 8.0;
    const double lut_throughput =
        kLutDatapathFraction * static_cast<double>(device_.luts);
    const double enc_cycles =
        std::max(enc_lut_ops / lut_throughput,
                 enc_bram / bramBytesPerCycle());

    // Associative search stage (DSP bound): all k classes in parallel
    // over a d'-wide window.
    const double window =
        static_cast<double>(searchWindow(app.k));
    const double search_cycles = d / window;
    const double dsp_macs = static_cast<double>(app.k) * d;

    // Pipelined stages: throughput set by the slower one.
    const double cycles = std::max(enc_cycles, search_cycles);
    return makeCost(cycles, enc_lut_ops, dsp_macs,
                    enc_bram + static_cast<double>(app.k) * d * 4.0,
                    d);
}

Cost
FpgaModel::baselineRetrainEpoch(const AppParams &app) const
{
    app.validate();
    // Each point is re-encoded and searched; mispredictions apply two
    // D-wide updates.
    const Cost per_query = baselineInferQuery(app);
    Cost epoch = per_query.scaled(
        static_cast<double>(app.trainSamples));

    const double d = static_cast<double>(app.dim);
    const double update_ops =
        2.0 * d * 32.0 / 8.0 *
        static_cast<double>(app.updatesPerEpoch);
    const double lut_throughput =
        kLutDatapathFraction * static_cast<double>(device_.luts);
    epoch += makeCost(update_ops / lut_throughput, update_ops, 0.0,
                      2.0 * d * 4.0 *
                          static_cast<double>(app.updatesPerEpoch),
                      0.0);
    return epoch;
}

std::size_t
FpgaModel::baselineModelBytes(const AppParams &app) const
{
    app.validate();
    return app.k * app.dim * 4;
}

// ---------------------------------------------------------------------
// LookHD
// ---------------------------------------------------------------------

Cost
FpgaModel::lookhdTrain(const AppParams &app) const
{
    app.validate();
    const double n = static_cast<double>(app.n);
    const double d = static_cast<double>(app.dim);
    const double s = static_cast<double>(app.trainSamples);
    const double m = static_cast<double>(app.m());
    const double k = static_cast<double>(app.k);
    const double lut_throughput =
        kLutDatapathFraction * static_cast<double>(device_.luts);

    // Streaming phase, per sample: quantize + m counter updates
    // (read-modify-write of 16-bit counters held in BRAM).
    const double quant_ops =
        n * static_cast<double>(app.q) * kLutOpsPerCompare;
    const double counter_bram = m * 4.0;
    const double stream_cycles_per_sample = std::max(
        {quant_ops / lut_throughput,
         counter_bram / bramBytesPerCycle(), 1.0});

    // Finalization: weighted accumulation. Compute cost covers the
    // nonzero counter rows of every (class, chunk); memory cost reads
    // each pre-stored row once, shared across all chunks and classes
    // (Sec. V-A reads d-wide windows of all q^r rows and applies them
    // to every chunk's counters in parallel). Tables that exceed BRAM
    // spill to external RAM and are bound by its bandwidth instead.
    const double rows = expectedActiveRows(
        app.addressSpace(), app.samplesPerClass());
    const double macs = k * m * rows * d;
    const double mac_ops = macs * kLutOpsPerNarrowMac;
    const double agg_ops = k * m * d * 32.0 / 8.0;

    const double elem_bytes =
        static_cast<double>(app.chunkElemBits()) / 8.0;
    const double table_bytes_total =
        app.addressSpace() * d * elem_bytes;
    const double rows_union = expectedActiveRows(
        app.addressSpace(), static_cast<double>(app.trainSamples));
    const double table_read = rows_union * d * elem_bytes;
    const double mem_bw =
        table_bytes_total <= static_cast<double>(device_.bramBytes())
            ? bramBytesPerCycle()
            : kDramBytesPerCycle;
    const double fin_cycles = std::max(
        (mac_ops + agg_ops) / lut_throughput, table_read / mem_bw);

    return makeCost(stream_cycles_per_sample * s + fin_cycles,
                    quant_ops * s + mac_ops + agg_ops, 0.0,
                    counter_bram * s + table_read, m * s * 16.0);
}

Cost
FpgaModel::lookhdInferQuery(const AppParams &app) const
{
    app.validate();
    const double n = static_cast<double>(app.n);
    const double d = static_cast<double>(app.dim);
    const double m = static_cast<double>(app.m());
    const double k = static_cast<double>(app.k);
    const double groups = static_cast<double>(app.modelGroups);
    const double lut_throughput =
        kLutDatapathFraction * static_cast<double>(device_.luts);

    // Encoding: quantize, fetch m chunk rows from BRAM, bind with P
    // and aggregate m (not n) hypervectors.
    const std::size_t acc_bits = accumulatorBits(app.m() * app.r);
    const double quant_ops =
        n * static_cast<double>(app.q) * kLutOpsPerCompare;
    const double agg_ops = m * d * static_cast<double>(acc_bits);
    const double enc_bram =
        m * d * static_cast<double>(app.chunkElemBits()) / 8.0;
    const double enc_cycles =
        std::max((quant_ops + agg_ops) / lut_throughput,
                 enc_bram / bramBytesPerCycle());

    // Associative search on the compressed model: DSP multiplications
    // against `groups` hypervectors, plus per-class sign-resolved
    // accumulation on LUTs (the P' unbinding needs no multipliers).
    const double window = static_cast<double>(
        searchWindow(app.modelGroups));
    const double search_cycles = d / window;
    const double dsp_macs = groups * d;
    const double unbind_ops = k * d * 2.0;
    const double search_lut_cycles = unbind_ops / lut_throughput;

    const double cycles = std::max(
        {enc_cycles, search_cycles, search_lut_cycles});
    return makeCost(cycles, quant_ops + agg_ops + unbind_ops, dsp_macs,
                    enc_bram + groups * d * 4.0, d);
}

Cost
FpgaModel::lookhdRetrainEpoch(const AppParams &app) const
{
    app.validate();
    const Cost per_query = lookhdInferQuery(app);
    Cost epoch = per_query.scaled(
        static_cast<double>(app.trainSamples));

    // Compressed-domain update: shift/negate/add of the query into the
    // model copy (Sec. V-C), two classes per misprediction.
    const double d = static_cast<double>(app.dim);
    const double update_ops =
        2.0 * d * 32.0 / 8.0 *
        static_cast<double>(app.updatesPerEpoch);
    const double lut_throughput =
        kLutDatapathFraction * static_cast<double>(device_.luts);
    epoch += makeCost(update_ops / lut_throughput, update_ops, 0.0,
                      2.0 * d * 4.0 *
                          static_cast<double>(app.updatesPerEpoch),
                      0.0);
    return epoch;
}

std::size_t
FpgaModel::lookhdModelBytes(const AppParams &app) const
{
    app.validate();
    return app.modelGroups * app.dim * 4 + (app.k * app.dim + 7) / 8;
}

// ---------------------------------------------------------------------
// Resource utilization
// ---------------------------------------------------------------------

Utilization
FpgaModel::baselineTrainUtilization(const AppParams &app) const
{
    app.validate();
    Utilization u;
    // Quantizers for all features plus as many adder lanes as the
    // datapath budget allows; accumulators in FFs.
    u.luts = std::min(
        device_.luts,
        static_cast<std::size_t>(
            app.n * app.q * kLutOpsPerCompare +
            kLutDatapathFraction * static_cast<double>(device_.luts)));
    u.ffs = std::min(device_.ffs, app.dim * 32 + app.n * 8);
    u.dsps = 0;
    // Level hypervectors + class accumulators.
    const std::size_t bytes =
        app.q * app.dim / 8 + app.k * app.dim * 4;
    u.bram36 = std::min(device_.bram36, bytes / 4608 + 1);
    return u;
}

Utilization
FpgaModel::baselineInferUtilization(const AppParams &app) const
{
    app.validate();
    Utilization u = baselineTrainUtilization(app);
    u.dsps = std::min(device_.dsps, searchWindow(app.k) * app.k);
    return u;
}

Utilization
FpgaModel::lookhdTrainUtilization(const AppParams &app) const
{
    app.validate();
    Utilization u;
    const double rows = app.addressSpace();
    // Quantizers + narrow multiplier array + chunk aggregation adders.
    u.luts = std::min(
        device_.luts,
        static_cast<std::size_t>(
            app.n * app.q * kLutOpsPerCompare +
            0.6 * static_cast<double>(device_.luts)));
    u.ffs = std::min(device_.ffs, app.m() * 64 + app.dim * 32);
    u.dsps = std::min(device_.dsps, device_.dsps / 4);
    // Chunk table (q^r rows of D elements) + counters + model.
    const double table_bytes =
        rows * static_cast<double>(app.dim) *
        static_cast<double>(app.chunkElemBits()) / 8.0;
    const double counter_bytes =
        static_cast<double>(app.m()) * rows * 2.0;
    const double model_bytes =
        static_cast<double>(app.k * app.dim) * 4.0;
    u.bram36 = std::min(
        device_.bram36,
        static_cast<std::size_t>(
            (table_bytes + counter_bytes + model_bytes) / 4608.0) +
            1);
    return u;
}

Utilization
FpgaModel::lookhdInferUtilization(const AppParams &app) const
{
    app.validate();
    Utilization u;
    const double rows = app.addressSpace();
    u.luts = std::min(
        device_.luts,
        static_cast<std::size_t>(
            app.n * app.q * kLutOpsPerCompare + app.k * app.dim / 4 +
            0.3 * static_cast<double>(device_.luts)));
    u.ffs = std::min(device_.ffs, app.dim * 32 + app.k * 64);
    u.dsps = std::min(device_.dsps,
                      searchWindow(app.modelGroups) * app.modelGroups);
    const double table_bytes =
        rows * static_cast<double>(app.dim) *
        static_cast<double>(app.chunkElemBits()) / 8.0;
    const double model_bytes =
        static_cast<double>(app.modelGroups * app.dim) * 4.0 +
        static_cast<double>(app.k * app.dim) / 8.0;
    u.bram36 = std::min(
        device_.bram36,
        static_cast<std::size_t>(
            (table_bytes + model_bytes) / 4608.0) +
            1);
    return u;
}

} // namespace lookhd::hw
