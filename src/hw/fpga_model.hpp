/**
 * @file
 * Analytical FPGA cost model for baseline HDC and LookHD (paper
 * Sec. V, Figs. 10-11).
 *
 * The model reproduces the pipeline structure the paper describes and
 * turns per-task operation counts into cycles under resource-limited
 * parallelism:
 *
 *  - wide element-wise integer work (encoding aggregation, weighted
 *    accumulation, chunk aggregation) runs on LUT/FF adder lanes;
 *  - the associative search's query x class multiplications run on
 *    DSPs, processed in d'-wide windows with all classes in parallel
 *    (d' = largest power of two <= DSPs / classes, capped at 256);
 *  - pre-stored chunk hypervectors and counters live in BRAM, whose
 *    aggregate port bandwidth can bound the encoding pipeline;
 *  - encoding and associative search are pipelined in inference, so a
 *    query costs the maximum of the two stages, not the sum.
 *
 * Energy is operation counts times the EnergyTable plus static power
 * for the task duration. The model is calibrated for *ratios* between
 * designs on the same device (what the paper's figures report), not
 * for absolute wall-clock of the authors' bitstreams.
 */

#ifndef LOOKHD_HW_FPGA_MODEL_HPP
#define LOOKHD_HW_FPGA_MODEL_HPP

#include "hw/app_params.hpp"
#include "hw/energy.hpp"
#include "hw/resources.hpp"

namespace lookhd::hw {

/** FPGA latency/energy/utilization model. */
class FpgaModel
{
  public:
    explicit FpgaModel(FpgaDevice device = kintex7Kc705(),
                       EnergyTable energy = defaultEnergyTable());

    const FpgaDevice &device() const { return device_; }

    // --- Baseline HDC (the state-of-the-art comparison point) ---

    /** Full initial training pass over the training set. */
    Cost baselineTrain(const AppParams &app) const;

    /** One inference query (encoding + associative search, pipelined). */
    Cost baselineInferQuery(const AppParams &app) const;

    /** One retraining epoch over the training set. */
    Cost baselineRetrainEpoch(const AppParams &app) const;

    /** Baseline model size in bytes (k x D x 4). */
    std::size_t baselineModelBytes(const AppParams &app) const;

    // --- LookHD ---

    /** Counter training: streaming counts + one weighted accumulation. */
    Cost lookhdTrain(const AppParams &app) const;

    /** One inference query on the compressed model. */
    Cost lookhdInferQuery(const AppParams &app) const;

    /** One compressed-domain retraining epoch. */
    Cost lookhdRetrainEpoch(const AppParams &app) const;

    /** Compressed model size in bytes (groups x D x 4 + key bits). */
    std::size_t lookhdModelBytes(const AppParams &app) const;

    // --- Resource utilization (Fig. 16) ---

    Utilization baselineTrainUtilization(const AppParams &app) const;
    Utilization baselineInferUtilization(const AppParams &app) const;
    Utilization lookhdTrainUtilization(const AppParams &app) const;
    Utilization lookhdInferUtilization(const AppParams &app) const;

    /** Associative-search window width d' for @p lanes competing units. */
    std::size_t searchWindow(std::size_t lanes) const;

  private:
    /** LUT adder lanes available for @p bits-wide operations. */
    double lutLanes(std::size_t bits) const;

    /** BRAM bytes readable per cycle across all ports. */
    double bramBytesPerCycle() const;

    /** Convert cycle count + op counts into a Cost. */
    Cost makeCost(double cycles, double lut_ops, double dsp_macs,
                  double bram_bytes, double reg_ops) const;

    FpgaDevice device_;
    EnergyTable energy_;
};

} // namespace lookhd::hw

#endif // LOOKHD_HW_FPGA_MODEL_HPP
