#include "hw/energy.hpp"

namespace lookhd::hw {

EnergyTable
defaultEnergyTable()
{
    return {};
}

Cost
Cost::operator+(const Cost &other) const
{
    Cost sum = *this;
    sum += other;
    return sum;
}

Cost &
Cost::operator+=(const Cost &other)
{
    cycles += other.cycles;
    seconds += other.seconds;
    dynamicJ += other.dynamicJ;
    staticJ += other.staticJ;
    return *this;
}

Cost
Cost::scaled(double times) const
{
    return {cycles * times, seconds * times, dynamicJ * times,
            staticJ * times};
}

} // namespace lookhd::hw
