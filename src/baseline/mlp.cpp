#include "baseline/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "hdc/similarity.hpp"
#include "util/rng.hpp"

namespace lookhd::baseline {

Mlp::Mlp(std::size_t inputs, std::size_t classes, MlpConfig config)
    : inputs_(inputs), classes_(classes), config_(std::move(config))
{
    if (inputs == 0 || classes == 0)
        throw std::invalid_argument("mlp shape must be nonzero");

    sizes_.push_back(inputs_);
    for (std::size_t h : config_.hiddenSizes) {
        if (h == 0)
            throw std::invalid_argument("hidden size must be nonzero");
        sizes_.push_back(h);
    }
    sizes_.push_back(classes_);

    util::Rng rng(config_.seed);
    layers_.reserve(sizes_.size() - 1);
    for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
        Layer layer;
        layer.in = sizes_[l];
        layer.out = sizes_[l + 1];
        layer.weights.resize(layer.in * layer.out);
        layer.biases.assign(layer.out, 0.0);
        // He initialization for the ReLU layers.
        const double scale =
            std::sqrt(2.0 / static_cast<double>(layer.in));
        for (auto &w : layer.weights)
            w = rng.nextGaussian(0.0, scale);
        layers_.push_back(std::move(layer));
    }
}

std::vector<double>
Mlp::prepare(std::span<const double> x) const
{
    if (x.size() != inputs_)
        throw std::invalid_argument("input width mismatch");
    std::vector<double> out(x.begin(), x.end());
    if (config_.standardizeInputs && !featureMean_.empty()) {
        for (std::size_t i = 0; i < out.size(); ++i)
            out[i] = (out[i] - featureMean_[i]) / featureStd_[i];
    }
    return out;
}

void
Mlp::forward(std::span<const double> x,
             std::vector<std::vector<double>> &activations) const
{
    activations.clear();
    activations.emplace_back(x.begin(), x.end());
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const Layer &layer = layers_[l];
        const std::vector<double> &in = activations.back();
        std::vector<double> out(layer.out);
        for (std::size_t o = 0; o < layer.out; ++o) {
            double z = layer.biases[o];
            const double *w = &layer.weights[o * layer.in];
            for (std::size_t i = 0; i < layer.in; ++i)
                z += w[i] * in[i];
            out[o] = z;
        }
        const bool hidden = l + 1 < layers_.size();
        if (hidden) {
            for (auto &v : out)
                v = std::max(v, 0.0);
        } else {
            // Softmax with max-shift for stability.
            const double mx =
                *std::max_element(out.begin(), out.end());
            double sum = 0.0;
            for (auto &v : out) {
                v = std::exp(v - mx);
                sum += v;
            }
            for (auto &v : out)
                v /= sum;
        }
        activations.push_back(std::move(out));
    }
}

void
Mlp::fit(const data::Dataset &train)
{
    if (train.numFeatures() != inputs_ ||
        train.numClasses() != classes_) {
        throw std::invalid_argument("dataset shape mismatch");
    }
    if (train.empty())
        throw std::invalid_argument("empty training set");

    if (config_.standardizeInputs) {
        featureMean_.assign(inputs_, 0.0);
        featureStd_.assign(inputs_, 0.0);
        for (std::size_t i = 0; i < train.size(); ++i) {
            const auto row = train.row(i);
            for (std::size_t f = 0; f < inputs_; ++f)
                featureMean_[f] += row[f];
        }
        const double count = static_cast<double>(train.size());
        for (auto &m : featureMean_)
            m /= count;
        for (std::size_t i = 0; i < train.size(); ++i) {
            const auto row = train.row(i);
            for (std::size_t f = 0; f < inputs_; ++f) {
                const double d = row[f] - featureMean_[f];
                featureStd_[f] += d * d;
            }
        }
        for (auto &s : featureStd_)
            s = std::max(std::sqrt(s / count), 1e-9);
    }

    util::Rng rng(config_.seed ^ 0xabcdef12345ULL);
    std::vector<std::size_t> order(train.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;

    std::vector<std::vector<double>> activations;
    std::vector<std::vector<double>> deltas(layers_.size());

    for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
        rng.shuffle(order);
        for (std::size_t idx : order) {
            const std::vector<double> x = prepare(train.row(idx));
            forward(x, activations);

            // Output delta: softmax + cross-entropy -> p - y.
            std::vector<double> &out_delta = deltas.back();
            out_delta = activations.back();
            out_delta[train.label(idx)] -= 1.0;

            // Backpropagate through hidden layers.
            for (std::size_t l = layers_.size(); l-- > 1;) {
                const Layer &layer = layers_[l];
                std::vector<double> &below = deltas[l - 1];
                below.assign(layer.in, 0.0);
                for (std::size_t o = 0; o < layer.out; ++o) {
                    const double d = deltas[l][o];
                    const double *w = &layer.weights[o * layer.in];
                    for (std::size_t i = 0; i < layer.in; ++i)
                        below[i] += w[i] * d;
                }
                // ReLU derivative on the hidden activation.
                const std::vector<double> &act = activations[l];
                for (std::size_t i = 0; i < layer.in; ++i) {
                    if (act[i] <= 0.0)
                        below[i] = 0.0;
                }
            }

            // SGD step (per-sample; batchSize kept for cost modeling).
            const double lr = config_.learningRate;
            for (std::size_t l = 0; l < layers_.size(); ++l) {
                Layer &layer = layers_[l];
                const std::vector<double> &in = activations[l];
                for (std::size_t o = 0; o < layer.out; ++o) {
                    const double d = deltas[l][o];
                    double *w = &layer.weights[o * layer.in];
                    for (std::size_t i = 0; i < layer.in; ++i)
                        w[i] -= lr * d * in[i];
                    layer.biases[o] -= lr * d;
                }
            }
        }
    }
    fitted_ = true;
}

std::vector<double>
Mlp::probabilities(std::span<const double> x) const
{
    std::vector<std::vector<double>> activations;
    forward(prepare(x), activations);
    return activations.back();
}

std::size_t
Mlp::predict(std::span<const double> x) const
{
    return hdc::argmax(probabilities(x));
}

double
Mlp::evaluate(const data::Dataset &test) const
{
    if (test.empty())
        throw std::invalid_argument("empty test set");
    std::size_t correct = 0;
    for (std::size_t i = 0; i < test.size(); ++i)
        correct += predict(test.row(i)) == test.label(i);
    return static_cast<double>(correct) / static_cast<double>(test.size());
}

std::size_t
Mlp::parameterCount() const
{
    std::size_t params = 0;
    for (const Layer &layer : layers_)
        params += layer.weights.size() + layer.biases.size();
    return params;
}

std::size_t
Mlp::macsPerInference() const
{
    std::size_t macs = 0;
    for (const Layer &layer : layers_)
        macs += layer.in * layer.out;
    return macs;
}

} // namespace lookhd::baseline
