#include "baseline/mlp_fpga_model.hpp"

#include <stdexcept>

namespace lookhd::baseline {

MlpFpgaModel::MlpFpgaModel(hw::FpgaDevice device, hw::EnergyTable energy)
    : device_(std::move(device)), energy_(energy)
{
}

std::size_t
MlpFpgaModel::forwardMacs(const std::vector<std::size_t> &layer_sizes)
{
    if (layer_sizes.size() < 2)
        throw std::invalid_argument("mlp needs at least two layers");
    std::size_t macs = 0;
    for (std::size_t l = 0; l + 1 < layer_sizes.size(); ++l)
        macs += layer_sizes[l] * layer_sizes[l + 1];
    return macs;
}

std::size_t
MlpFpgaModel::modelBytes(const std::vector<std::size_t> &layer_sizes)
{
    std::size_t params = 0;
    for (std::size_t l = 0; l + 1 < layer_sizes.size(); ++l)
        params += layer_sizes[l] * layer_sizes[l + 1] +
                  layer_sizes[l + 1];
    return params * 4;
}

hw::Cost
MlpFpgaModel::fromMacs(double macs) const
{
    // Generated accelerators do not keep every DSP busy every cycle;
    // published DNNWeaver/FPDeep designs sustain roughly a third of
    // peak on layer shapes like these (drain/fill, memory stalls).
    constexpr double dsp_utilization = 0.35;
    const double cycles = macs / (dsp_utilization *
                                  static_cast<double>(device_.dsps));
    hw::Cost cost;
    cost.cycles = cycles;
    cost.seconds = cycles * device_.clockNs * 1e-9;
    // Each MAC also streams one weight from BRAM.
    cost.dynamicJ =
        macs * energy_.dspMacJ + macs * 4.0 * energy_.bramReadJ;
    cost.staticJ = energy_.staticPowerW * cost.seconds;
    return cost;
}

hw::Cost
MlpFpgaModel::inferQuery(
    const std::vector<std::size_t> &layer_sizes) const
{
    return fromMacs(static_cast<double>(forwardMacs(layer_sizes)));
}

hw::Cost
MlpFpgaModel::train(const std::vector<std::size_t> &layer_sizes,
                    std::size_t samples, std::size_t epochs) const
{
    const double fwd = static_cast<double>(forwardMacs(layer_sizes));
    const double per_sample = 3.0 * fwd; // forward + backward + update
    return fromMacs(per_sample * static_cast<double>(samples) *
                    static_cast<double>(epochs));
}

} // namespace lookhd::baseline
