/**
 * @file
 * FPGA cost model for MLP training and inference, standing in for the
 * DNNWeaver (inference) and FPDeep (training) implementations the
 * paper's Table IV compares against.
 *
 * Both tools map dense layers onto DSP multiply-accumulate arrays; the
 * model charges one DSP MAC per weight per pass, with the backward
 * pass and the weight update each costing another forward's worth of
 * MACs (the standard 3x rule), run for the configured epoch count.
 */

#ifndef LOOKHD_BASELINE_MLP_FPGA_MODEL_HPP
#define LOOKHD_BASELINE_MLP_FPGA_MODEL_HPP

#include <vector>

#include "hw/energy.hpp"
#include "hw/resources.hpp"

namespace lookhd::baseline {

/** FPGA latency/energy model of a dense MLP. */
class MlpFpgaModel
{
  public:
    explicit MlpFpgaModel(
        hw::FpgaDevice device = hw::kintex7Kc705(),
        hw::EnergyTable energy = hw::defaultEnergyTable());

    /**
     * One forward pass.
     * @param layer_sizes Widths including input and output.
     */
    hw::Cost inferQuery(const std::vector<std::size_t> &layer_sizes) const;

    /**
     * Full training run: epochs x samples x (forward + backward +
     * update).
     */
    hw::Cost train(const std::vector<std::size_t> &layer_sizes,
                   std::size_t samples, std::size_t epochs) const;

    /** MACs of one forward pass. */
    static std::size_t
    forwardMacs(const std::vector<std::size_t> &layer_sizes);

    /** Weights + biases in bytes (float32). */
    static std::size_t
    modelBytes(const std::vector<std::size_t> &layer_sizes);

  private:
    hw::Cost fromMacs(double macs) const;

    hw::FpgaDevice device_;
    hw::EnergyTable energy_;
};

} // namespace lookhd::baseline

#endif // LOOKHD_BASELINE_MLP_FPGA_MODEL_HPP
