/**
 * @file
 * Multi-layer perceptron baseline (the Table IV comparator).
 *
 * A small feed-forward network with ReLU hidden layers, softmax
 * output, cross-entropy loss and mini-batch SGD. The paper compares
 * LookHD on FPGA against MLP implementations (DNNWeaver for inference,
 * FPDeep for training); this class provides the algorithmic side -
 * real training with real accuracy - while mlp_fpga_model maps its
 * operation counts onto the FPGA cost model.
 */

#ifndef LOOKHD_BASELINE_MLP_HPP
#define LOOKHD_BASELINE_MLP_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.hpp"

namespace lookhd::baseline {

/** MLP hyperparameters. */
struct MlpConfig
{
    /** Hidden layer widths, input->output order. */
    std::vector<std::size_t> hiddenSizes = {128};
    double learningRate = 0.05;
    std::size_t epochs = 30;
    std::size_t batchSize = 32;
    std::uint64_t seed = 7;
    /** Standardize inputs with train-set mean/stddev per feature. */
    bool standardizeInputs = true;
};

/** Feed-forward classifier trained with SGD. */
class Mlp
{
  public:
    /**
     * @param inputs Feature count.
     * @param classes Output classes.
     */
    Mlp(std::size_t inputs, std::size_t classes, MlpConfig config = {});

    std::size_t inputs() const { return inputs_; }
    std::size_t classes() const { return classes_; }
    const MlpConfig &config() const { return config_; }

    /** Train on @p train for config().epochs epochs. */
    void fit(const data::Dataset &train);

    /** Class probabilities (softmax) of one feature vector. */
    std::vector<double> probabilities(std::span<const double> x) const;

    /** argmax of probabilities(). */
    std::size_t predict(std::span<const double> x) const;

    /** Accuracy on a labeled dataset. */
    double evaluate(const data::Dataset &test) const;

    /** Trainable parameters (weights + biases). */
    std::size_t parameterCount() const;

    /** Multiply-accumulates of one forward pass. */
    std::size_t macsPerInference() const;

    /** Layer widths including input and output. */
    const std::vector<std::size_t> &layerSizes() const
    {
        return sizes_;
    }

  private:
    /** One dense layer: weights [out x in] row-major + biases [out]. */
    struct Layer
    {
        std::size_t in = 0;
        std::size_t out = 0;
        std::vector<double> weights;
        std::vector<double> biases;
    };

    /** Forward pass storing per-layer activations. */
    void forward(std::span<const double> x,
                 std::vector<std::vector<double>> &activations) const;

    /** Standardize a raw input vector with the fitted statistics. */
    std::vector<double> prepare(std::span<const double> x) const;

    std::size_t inputs_;
    std::size_t classes_;
    MlpConfig config_;
    std::vector<std::size_t> sizes_;
    std::vector<Layer> layers_;
    std::vector<double> featureMean_;
    std::vector<double> featureStd_;
    bool fitted_ = false;
};

} // namespace lookhd::baseline

#endif // LOOKHD_BASELINE_MLP_HPP
