/**
 * @file
 * Similarity metrics between hypervectors.
 *
 * HDC classification assigns a query to the class hypervector with the
 * highest cosine similarity. The paper (Sec. IV-A) notes that with
 * class hypervectors pre-normalized and the query magnitude shared
 * across classes, maximizing cosine reduces to maximizing a plain dot
 * product - the form the hardware implements.
 */

#ifndef LOOKHD_HDC_SIMILARITY_HPP
#define LOOKHD_HDC_SIMILARITY_HPP

#include "hdc/hypervector.hpp"

namespace lookhd::hdc {

/** Cosine similarity; 0 if either vector is all-zero. */
double cosine(const IntHv &a, const IntHv &b);

/** Cosine similarity; 0 if either vector is all-zero. */
double cosine(const RealHv &a, const RealHv &b);

/** Cosine similarity between an integer and a real hypervector. */
double cosine(const IntHv &a, const RealHv &b);

/** Cosine similarity of bipolar hypervectors: dot / D. */
double cosine(const BipolarHv &a, const BipolarHv &b);

/**
 * Normalized Hamming similarity of bipolar hypervectors: fraction of
 * agreeing positions, in [0, 1]. Related to cosine by
 * cos = 2 * hamming - 1.
 */
double hammingSimilarity(const BipolarHv &a, const BipolarHv &b);

/** Index of the maximum value; @pre scores non-empty. */
std::size_t argmax(const std::vector<double> &scores);

} // namespace lookhd::hdc

#endif // LOOKHD_HDC_SIMILARITY_HPP
