#include "hdc/hypervector.hpp"

#include <cmath>

#include "hdc/kernels.hpp"
#include "util/check.hpp"

namespace lookhd::hdc {

BipolarHv
randomBipolar(Dim d, util::Rng &rng)
{
    return rng.signVector(d);
}

namespace {

template <typename Hv>
Hv
rotateImpl(const Hv &hv, std::size_t shift)
{
    const std::size_t d = hv.size();
    LOOKHD_DCHECK(d > 0, "rotate of empty hypervector");
    shift %= d;
    Hv out(d);
    for (std::size_t i = 0; i < d; ++i)
        out[(i + shift) % d] = hv[i];
    return out;
}

} // namespace

BipolarHv
rotate(const BipolarHv &hv, std::size_t shift)
{
    return rotateImpl(hv, shift);
}

IntHv
rotate(const IntHv &hv, std::size_t shift)
{
    return rotateImpl(hv, shift);
}

void
addRotated(IntHv &acc, const BipolarHv &hv, std::size_t shift)
{
    const std::size_t d = acc.size();
    LOOKHD_DCHECK(hv.size() == d, "dimensionality mismatch");
    shift %= d;
    // Two contiguous loops instead of a modulo per element.
    std::size_t i = 0;
    for (std::size_t j = shift; j < d; ++j, ++i)
        acc[j] += hv[i];
    for (std::size_t j = 0; j < shift; ++j, ++i)
        acc[j] += hv[i];
}

void
addInto(IntHv &acc, const IntHv &hv)
{
    LOOKHD_DCHECK(acc.size() == hv.size(), "dimensionality mismatch");
    for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] += hv[i];
}

void
subtractFrom(IntHv &acc, const IntHv &hv)
{
    LOOKHD_DCHECK(acc.size() == hv.size(), "dimensionality mismatch");
    for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] -= hv[i];
}

IntHv
bind(const BipolarHv &key, const IntHv &hv)
{
    LOOKHD_DCHECK(key.size() == hv.size(), "dimensionality mismatch");
    IntHv out(hv.size());
    for (std::size_t i = 0; i < hv.size(); ++i)
        out[i] = key[i] * hv[i];
    return out;
}

BipolarHv
bind(const BipolarHv &a, const BipolarHv &b)
{
    LOOKHD_DCHECK(a.size() == b.size(), "dimensionality mismatch");
    BipolarHv out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = static_cast<std::int8_t>(a[i] * b[i]);
    return out;
}

void
bindInto(IntHv &hv, const BipolarHv &key)
{
    LOOKHD_DCHECK(key.size() == hv.size(), "dimensionality mismatch");
    for (std::size_t i = 0; i < hv.size(); ++i)
        hv[i] *= key[i];
}

BipolarHv
sign(const IntHv &hv)
{
    BipolarHv out(hv.size());
    for (std::size_t i = 0; i < hv.size(); ++i)
        out[i] = hv[i] < 0 ? std::int8_t{-1} : std::int8_t{1};
    return out;
}

std::int64_t
dot(const IntHv &a, const IntHv &b)
{
    LOOKHD_DCHECK(a.size() == b.size(), "dimensionality mismatch");
    return kernels::dotInt(a.data(), b.data(), a.size());
}

std::int64_t
dot(const IntHv &a, const BipolarHv &b)
{
    LOOKHD_DCHECK(a.size() == b.size(), "dimensionality mismatch");
    return kernels::dotIntI8(a.data(), b.data(), a.size());
}

std::int64_t
dot(const BipolarHv &a, const BipolarHv &b)
{
    LOOKHD_DCHECK(a.size() == b.size(), "dimensionality mismatch");
    std::int64_t sum = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        sum += static_cast<std::int64_t>(a[i]) * b[i];
    return sum;
}

double
dot(const IntHv &a, const RealHv &b)
{
    LOOKHD_DCHECK(a.size() == b.size(), "dimensionality mismatch");
    return kernels::dotIntReal(a.data(), b.data(), a.size());
}

double
dot(const RealHv &a, const RealHv &b)
{
    LOOKHD_DCHECK(a.size() == b.size(), "dimensionality mismatch");
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        sum += a[i] * b[i];
    return sum;
}

double
norm(const IntHv &hv)
{
    double sum = 0.0;
    for (auto v : hv)
        sum += static_cast<double>(v) * v;
    return std::sqrt(sum);
}

double
norm(const RealHv &hv)
{
    return std::sqrt(dot(hv, hv));
}

RealHv
toReal(const IntHv &hv)
{
    RealHv out(hv.size());
    for (std::size_t i = 0; i < hv.size(); ++i)
        out[i] = static_cast<double>(hv[i]);
    return out;
}

RealHv
normalized(const IntHv &hv)
{
    return normalized(toReal(hv));
}

RealHv
normalized(const RealHv &hv)
{
    const double n = norm(hv);
    if (n == 0.0)
        return hv;
    RealHv out(hv.size());
    for (std::size_t i = 0; i < hv.size(); ++i)
        out[i] = hv[i] / n;
    return out;
}

} // namespace lookhd::hdc
