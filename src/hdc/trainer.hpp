/**
 * @file
 * Baseline HDC training loop (paper Sec. II-B).
 *
 * Initial training sums the encoded hypervectors of each class;
 * retraining then iterates over the training set and applies the
 * perceptron-style correction C_correct += H, C_wrong -= H to every
 * misclassified point, for a fixed number of epochs or until the
 * validation accuracy stops improving.
 */

#ifndef LOOKHD_HDC_TRAINER_HPP
#define LOOKHD_HDC_TRAINER_HPP

#include <vector>

#include "data/dataset.hpp"
#include "hdc/encoder.hpp"
#include "hdc/model.hpp"

namespace lookhd::hdc {

/** Settings for the baseline training loop. */
struct TrainOptions
{
    /** Maximum retraining epochs (0 = initial training only). */
    std::size_t retrainEpochs = 10;

    /**
     * Stop early when training accuracy fails to improve by more than
     * this for patience consecutive epochs. Negative disables.
     */
    double earlyStopDelta = -1.0;
    std::size_t earlyStopPatience = 3;
};

/** Result of a training run. */
struct TrainResult
{
    ClassModel model;
    /** Training-set accuracy after initial training and each epoch. */
    std::vector<double> accuracyHistory;
    std::size_t epochsRun = 0;
};

/** Trains and evaluates the conventional HDC classifier. */
class BaselineTrainer
{
  public:
    explicit BaselineTrainer(const BaselineEncoder &encoder)
        : encoder_(encoder)
    {}

    /** Encode every data point once (retraining reuses encodings). */
    std::vector<IntHv> encodeAll(const data::Dataset &ds) const;

    /** Initial training + retraining per @p options. */
    TrainResult train(const data::Dataset &train,
                      const TrainOptions &options = {}) const;

    /**
     * Training from pre-encoded points (used when the caller wants to
     * amortize the encoding cost across experiments).
     */
    TrainResult trainEncoded(const std::vector<IntHv> &encoded,
                             const std::vector<std::size_t> &labels,
                             std::size_t num_classes,
                             const TrainOptions &options = {}) const;

    /** Fraction of points in @p test predicted correctly. */
    double evaluate(const ClassModel &model,
                    const data::Dataset &test) const;

  private:
    const BaselineEncoder &encoder_;
};

/** Accuracy of @p model on pre-encoded points. */
double evaluateEncoded(const ClassModel &model,
                       const std::vector<IntHv> &encoded,
                       const std::vector<std::size_t> &labels);

} // namespace lookhd::hdc

#endif // LOOKHD_HDC_TRAINER_HPP
