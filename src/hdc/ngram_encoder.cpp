#include "hdc/ngram_encoder.hpp"

#include "util/check.hpp"

namespace lookhd::hdc {

NgramEncoder::NgramEncoder(std::shared_ptr<const KeyMemory> symbols,
                           std::size_t n)
    : symbols_(std::move(symbols)), n_(n)
{
    LOOKHD_CHECK(symbols_ && symbols_->count() != 0,
                 "encoder needs a symbol memory");
    LOOKHD_CHECK(n != 0, "n-gram order must be positive");
}

BipolarHv
NgramEncoder::encodeGram(std::span<const std::size_t> gram) const
{
    LOOKHD_CHECK(!gram.empty() && gram.size() <= n_,
                 "gram length out of range");
    const Dim d = dim();
    BipolarHv acc(d, 1);
    for (std::size_t j = 0; j < gram.size(); ++j) {
        LOOKHD_CHECK(gram[j] < alphabetSize(), "symbol out of alphabet");
        // Position j (0 = oldest) is rotated by (len - 1 - j).
        const BipolarHv rotated =
            rotate(symbols_->at(gram[j]), gram.size() - 1 - j);
        for (std::size_t i = 0; i < d; ++i)
            acc[i] = static_cast<std::int8_t>(acc[i] * rotated[i]);
    }
    return acc;
}

IntHv
NgramEncoder::encodeSequence(
    std::span<const std::size_t> sequence) const
{
    LOOKHD_CHECK(!sequence.empty(), "cannot encode an empty sequence");
    IntHv acc(dim(), 0);
    if (sequence.size() < n_) {
        const BipolarHv gram = encodeGram(sequence);
        for (std::size_t i = 0; i < acc.size(); ++i)
            acc[i] = gram[i];
        return acc;
    }
    for (std::size_t start = 0; start + n_ <= sequence.size();
         ++start) {
        const BipolarHv gram =
            encodeGram(sequence.subspan(start, n_));
        for (std::size_t i = 0; i < acc.size(); ++i)
            acc[i] += gram[i];
    }
    return acc;
}

} // namespace lookhd::hdc
