#include "hdc/record_encoder.hpp"

#include "util/check.hpp"

namespace lookhd::hdc {

RecordEncoder::RecordEncoder(
    std::shared_ptr<const LevelMemory> levels,
    std::shared_ptr<const quant::Quantizer> quantizer,
    std::size_t num_features, util::Rng &rng)
    : levels_(std::move(levels)), quantizer_(std::move(quantizer)),
      ids_(levels_ ? levels_->dim() : 0, num_features, rng)
{
    LOOKHD_CHECK(levels_ && quantizer_, "encoder needs levels and quantizer");
    LOOKHD_CHECK(quantizer_->fitted(), "quantizer must be fitted");
    LOOKHD_CHECK(quantizer_->levels() == levels_->levels(),
                 "quantizer levels do not match level memory");
    LOOKHD_CHECK(num_features != 0, "encoder needs features");
}

IntHv
RecordEncoder::encode(std::span<const double> features) const
{
    LOOKHD_CHECK(features.size() == ids_.count(),
                 "feature vector width mismatch");
    IntHv acc(dim(), 0);
    for (std::size_t f = 0; f < features.size(); ++f) {
        const BipolarHv &level =
            levels_->at(quantizer_->level(features[f]));
        const BipolarHv &id = ids_.at(f);
        for (std::size_t i = 0; i < acc.size(); ++i)
            acc[i] += id[i] * level[i];
    }
    return acc;
}

} // namespace lookhd::hdc
