/**
 * @file
 * Item memories: the stored hypervectors that encoders draw from.
 *
 * A LevelMemory holds the q "level" hypervectors L_1..L_q that stand
 * for quantized feature values (paper Sec. II-A, "Alphabets
 * Generation"). Neighboring levels are similar; the extreme levels are
 * nearly orthogonal, mirroring the metric structure of the quantized
 * value range.
 *
 * A KeyMemory holds independent random bipolar hypervectors used as
 * binding keys: the chunk-position hypervectors P_1..P_m of Eq. 3 and
 * the class keys P'_1..P'_k of Eq. 4 are both KeyMemories.
 */

#ifndef LOOKHD_HDC_ITEM_MEMORY_HPP
#define LOOKHD_HDC_ITEM_MEMORY_HPP

#include <cstddef>
#include <vector>

#include "hdc/hypervector.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace lookhd::hdc {

/** How consecutive level hypervectors are derived from each other. */
enum class LevelGen
{
    /**
     * Flip D/(2(q-1)) *distinct* dimensions per step. After q-1 steps
     * exactly D/2 dimensions differ, so delta(L_1, L_q) = 0 exactly
     * (up to rounding). This matches the property the paper asserts
     * ("L_q ... will be nearly orthogonal to L_1").
     */
    kDistinctHalf,

    /**
     * The paper's literal recipe: re-randomize ("fill") D/q randomly
     * chosen dimensions of the previous level at each step, sampled
     * independently per step. Gives high neighbor similarity and low
     * (but nonzero, ~e^-2) end-to-end similarity.
     */
    kPaperRandom,
};

/** The q level hypervectors representing quantized feature values. */
class LevelMemory
{
  public:
    /**
     * Generate level hypervectors.
     *
     * @param dim Hypervector dimensionality D.
     * @param levels Number of quantization levels q. @pre levels >= 2.
     * @param rng Randomness source (consumed).
     * @param strategy Derivation rule for consecutive levels.
     */
    LevelMemory(Dim dim, std::size_t levels, util::Rng &rng,
                LevelGen strategy = LevelGen::kDistinctHalf);

    /**
     * Restore from explicit hypervectors (deserialization). @pre at
     * least two equal-dimension hypervectors.
     */
    explicit LevelMemory(std::vector<BipolarHv> hvs);

    Dim dim() const { return dim_; }
    std::size_t levels() const { return hvs_.size(); }

    /** Level hypervector for quantized level @p index in [0, q). */
    const BipolarHv &
    at(std::size_t index) const
    {
        LOOKHD_CHECK_BOUNDS(index, hvs_.size());
        return hvs_[index];
    }

  private:
    Dim dim_;
    std::vector<BipolarHv> hvs_;
};

/** A bank of independent random bipolar binding keys. */
class KeyMemory
{
  public:
    /**
     * Generate @p count independent random bipolar hypervectors of
     * dimensionality @p dim.
     */
    KeyMemory(Dim dim, std::size_t count, util::Rng &rng);

    /**
     * Restore from explicit keys (deserialization). Keys must share
     * one dimensionality; an empty vector yields a zero-key memory of
     * dimension 0.
     */
    explicit KeyMemory(std::vector<BipolarHv> hvs);

    Dim dim() const { return dim_; }
    std::size_t count() const { return hvs_.size(); }

    /** Key @p index in [0, count). */
    const BipolarHv &
    at(std::size_t index) const
    {
        LOOKHD_CHECK_BOUNDS(index, hvs_.size());
        return hvs_[index];
    }

  private:
    Dim dim_;
    std::vector<BipolarHv> hvs_;
};

} // namespace lookhd::hdc

#endif // LOOKHD_HDC_ITEM_MEMORY_HPP
