#include "hdc/trainer.hpp"

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace lookhd::hdc {

std::vector<IntHv>
BaselineTrainer::encodeAll(const data::Dataset &ds) const
{
    LOOKHD_SPAN("hdc.train.encode_all", "encode");
    std::vector<IntHv> out;
    out.reserve(ds.size());
    for (std::size_t i = 0; i < ds.size(); ++i)
        out.push_back(encoder_.encode(ds.row(i)));
    return out;
}

TrainResult
BaselineTrainer::train(const data::Dataset &train,
                       const TrainOptions &options) const
{
    return trainEncoded(encodeAll(train), train.labels(),
                        train.numClasses(), options);
}

TrainResult
BaselineTrainer::trainEncoded(const std::vector<IntHv> &encoded,
                              const std::vector<std::size_t> &labels,
                              std::size_t num_classes,
                              const TrainOptions &options) const
{
    LOOKHD_CHECK(encoded.size() == labels.size() && !encoded.empty(),
                 "encoded/labels size mismatch");

    LOOKHD_SPAN("hdc.train", "train");
    LOOKHD_COUNT_ADD("hdc.train.samples", encoded.size());
    TrainResult result{ClassModel(encoder_.dim(), num_classes), {}, 0};
    ClassModel &model = result.model;

    // Initial training: class sums.
    for (std::size_t i = 0; i < encoded.size(); ++i)
        model.accumulate(labels[i], encoded[i]);
    model.normalize();
    result.accuracyHistory.push_back(
        evaluateEncoded(model, encoded, labels));

    double best = result.accuracyHistory.back();
    std::size_t stale = 0;

    for (std::size_t epoch = 0; epoch < options.retrainEpochs; ++epoch) {
        LOOKHD_SPAN("hdc.train.epoch", "train");
        for (std::size_t i = 0; i < encoded.size(); ++i) {
            const std::size_t pred = model.predict(encoded[i]);
            if (pred != labels[i]) {
                model.update(labels[i], pred, encoded[i]);
                // Keep the normalized cache fresh so subsequent
                // predictions in the same epoch see the update, as the
                // sequential algorithm in the paper does.
                model.normalize();
            }
        }
        model.normalize();
        ++result.epochsRun;
        const double acc = evaluateEncoded(model, encoded, labels);
        result.accuracyHistory.push_back(acc);

        if (options.earlyStopDelta >= 0.0) {
            if (acc > best + options.earlyStopDelta) {
                best = acc;
                stale = 0;
            } else if (++stale >= options.earlyStopPatience) {
                break;
            }
        }
    }
    return result;
}

double
BaselineTrainer::evaluate(const ClassModel &model,
                          const data::Dataset &test) const
{
    LOOKHD_CHECK(!test.empty(), "empty test set");
    std::size_t correct = 0;
    for (std::size_t i = 0; i < test.size(); ++i) {
        const IntHv query = encoder_.encode(test.row(i));
        correct += model.predict(query) == test.label(i);
    }
    return static_cast<double>(correct) / static_cast<double>(test.size());
}

double
evaluateEncoded(const ClassModel &model,
                const std::vector<IntHv> &encoded,
                const std::vector<std::size_t> &labels)
{
    LOOKHD_CHECK(!encoded.empty(), "empty evaluation set");
    std::size_t correct = 0;
    for (std::size_t i = 0; i < encoded.size(); ++i)
        correct += model.predict(encoded[i]) == labels[i];
    return static_cast<double>(correct) /
           static_cast<double>(encoded.size());
}

} // namespace lookhd::hdc
