#include "hdc/bitpack.hpp"

#include <bit>

#include "hdc/kernels.hpp"
#include "util/check.hpp"

namespace lookhd::hdc {

PackedHv::PackedHv(const BipolarHv &hv)
    : dim_(hv.size()), words_((hv.size() + 63) / 64, 0)
{
    for (std::size_t i = 0; i < hv.size(); ++i) {
        if (hv[i] > 0)
            words_[i / 64] |= std::uint64_t{1} << (i % 64);
    }
}

PackedHv::PackedHv(Dim d) : dim_(d), words_((d + 63) / 64, 0) {}

PackedHv::PackedHv(Dim d, std::vector<std::uint64_t> words)
    : dim_(d), words_(std::move(words))
{
    LOOKHD_CHECK(words_.size() == (dim_ + 63) / 64,
                 "packed word count does not match dimensionality");
    LOOKHD_CHECK(dim_ % 64 == 0 || words_.empty() ||
                     (words_.back() &
                      ~kernels::tailMask64(dim_)) == 0,
                 "packed tail bits must be zero");
}

int
PackedHv::at(std::size_t i) const
{
    LOOKHD_CHECK_BOUNDS(i, dim_);
    return (words_[i / 64] >> (i % 64)) & 1 ? 1 : -1;
}

void
PackedHv::set(std::size_t i, bool positive)
{
    LOOKHD_CHECK_BOUNDS(i, dim_);
    const std::uint64_t mask = std::uint64_t{1} << (i % 64);
    if (positive)
        words_[i / 64] |= mask;
    else
        words_[i / 64] &= ~mask;
}

BipolarHv
PackedHv::unpack() const
{
    BipolarHv out(dim_);
    for (std::size_t i = 0; i < dim_; ++i)
        out[i] = static_cast<std::int8_t>(at(i));
    return out;
}

void
PackedHv::trimTail()
{
    const std::size_t tail = dim_ % 64;
    if (tail != 0 && !words_.empty())
        words_.back() &= (std::uint64_t{1} << tail) - 1;
}

PackedHv
PackedHv::bind(const PackedHv &other) const
{
    LOOKHD_CHECK(dim_ == other.dim_, "dimensionality mismatch");
    PackedHv out(dim_);
    // Bipolar product is +1 iff signs agree: XNOR of the bits.
    for (std::size_t w = 0; w < words_.size(); ++w)
        out.words_[w] = ~(words_[w] ^ other.words_[w]);
    out.trimTail();
    return out;
}

std::size_t
matchCount(const PackedHv &a, const PackedHv &b)
{
    LOOKHD_CHECK(a.dim() == b.dim(), "dimensionality mismatch");
    return kernels::matchCountWords(a.data().data(), b.data().data(),
                                    a.data().size(), a.dim());
}

double
hammingSimilarity(const PackedHv &a, const PackedHv &b)
{
    if (a.dim() == 0)
        return 0.0;
    return static_cast<double>(matchCount(a, b)) /
           static_cast<double>(a.dim());
}

std::int64_t
dot(const PackedHv &a, const PackedHv &b)
{
    // matches - mismatches = 2 * matches - D.
    return 2 * static_cast<std::int64_t>(matchCount(a, b)) -
           static_cast<std::int64_t>(a.dim());
}

std::int64_t
dot(const IntHv &query, const PackedHv &packed)
{
    LOOKHD_CHECK(query.size() == packed.dim(),
                 "dimensionality mismatch");
    return kernels::dotIntPackedWords(query.data(),
                                      packed.data().data(),
                                      query.size());
}

} // namespace lookhd::hdc
