/**
 * @file
 * NEON (aarch64) kernel implementations (integer kernels only).
 *
 * Self-gated on __aarch64__ && __ARM_NEON (NEON is mandatory on
 * AArch64, so no runtime CPU probe is needed; on every other target
 * this TU compiles to an always-null neonTable()). CI keeps this
 * from rotting with a qemu-less aarch64 cross-compile job; it cannot
 * be executed in the x86 test environment, which is why every kernel
 * here is either exact integer arithmetic (bit-identical to the
 * scalar reference by construction) or literally the scalar
 * reference itself: the double kernels are copied from the scalar
 * table so the 4-lane float accumulation contract stays
 * single-sourced rather than hand-ported to float64x2 lanes.
 */

#include "hdc/kernels.hpp"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

namespace lookhd::hdc::kernels {

namespace {

std::int64_t
dotIntNeon(const std::int32_t *a, const std::int32_t *b,
           std::size_t n)
{
    int64x2_t accLo = vdupq_n_s64(0);
    int64x2_t accHi = vdupq_n_s64(0);
    std::size_t i = 0;
    const std::size_t n4 = n & ~std::size_t{3};
    for (; i < n4; i += 4) {
        const int32x4_t av = vld1q_s32(a + i);
        const int32x4_t bv = vld1q_s32(b + i);
        accLo = vaddq_s64(accLo,
                          vmull_s32(vget_low_s32(av),
                                    vget_low_s32(bv)));
        accHi = vaddq_s64(accHi,
                          vmull_s32(vget_high_s32(av),
                                    vget_high_s32(bv)));
    }
    std::int64_t sum = vaddvq_s64(vaddq_s64(accLo, accHi));
    for (; i < n; ++i)
        sum += static_cast<std::int64_t>(a[i]) * b[i];
    return sum;
}

std::int64_t
dotIntI8Neon(const std::int32_t *a, const std::int8_t *signs,
             std::size_t n)
{
    int64x2_t accLo = vdupq_n_s64(0);
    int64x2_t accHi = vdupq_n_s64(0);
    std::size_t i = 0;
    const std::size_t n8 = n & ~std::size_t{7};
    for (; i < n8; i += 8) {
        const int16x8_t s16 = vmovl_s8(vld1_s8(signs + i));
        const int32x4_t s0 = vmovl_s16(vget_low_s16(s16));
        const int32x4_t s1 = vmovl_s16(vget_high_s16(s16));
        const int32x4_t a0 = vld1q_s32(a + i);
        const int32x4_t a1 = vld1q_s32(a + i + 4);
        accLo = vaddq_s64(accLo, vmull_s32(vget_low_s32(a0),
                                           vget_low_s32(s0)));
        accHi = vaddq_s64(accHi, vmull_s32(vget_high_s32(a0),
                                           vget_high_s32(s0)));
        accLo = vaddq_s64(accLo, vmull_s32(vget_low_s32(a1),
                                           vget_low_s32(s1)));
        accHi = vaddq_s64(accHi, vmull_s32(vget_high_s32(a1),
                                           vget_high_s32(s1)));
    }
    std::int64_t sum = vaddvq_s64(vaddq_s64(accLo, accHi));
    for (; i < n; ++i)
        sum += static_cast<std::int64_t>(a[i]) * signs[i];
    return sum;
}

std::int64_t
dotI8I8Neon(const std::int8_t *a, const std::int8_t *b,
            std::size_t n)
{
    // 16 int8 per step: vmull_s8 gives exact int16 products, the
    // pairwise-add-accumulate widens into int32 lanes (each gains at
    // most 4 * 127 * 127 per step), and the int32 accumulator drains
    // into the int64 total every kBlock steps, well clear of
    // overflow (INT32_MAX / 64516 ~ 33288 steps).
    constexpr std::size_t kBlock = 8192;
    std::int64_t sum = 0;
    std::size_t i = 0;
    const std::size_t n16 = n & ~std::size_t{15};
    while (i < n16) {
        const std::size_t stop =
            i + (n16 - i < kBlock * std::size_t{16}
                     ? n16 - i
                     : kBlock * std::size_t{16});
        int32x4_t acc = vdupq_n_s32(0);
        for (; i < stop; i += 16) {
            const int8x16_t av = vld1q_s8(a + i);
            const int8x16_t bv = vld1q_s8(b + i);
            acc = vpadalq_s16(acc, vmull_s8(vget_low_s8(av),
                                            vget_low_s8(bv)));
            acc = vpadalq_s16(acc, vmull_s8(vget_high_s8(av),
                                            vget_high_s8(bv)));
        }
        sum += vaddlvq_s32(acc);
    }
    for (; i < n; ++i)
        sum += static_cast<std::int64_t>(a[i]) * b[i];
    return sum;
}

std::int64_t
dotIntPackedWordsNeon(const std::int32_t *q,
                      const std::uint64_t *words, std::size_t n)
{
    // Scalar word loop (the sign-select does not vectorize cleanly
    // without SVE); exactness is what matters for this entry.
    std::int64_t sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const bool positive = (words[i / 64] >> (i % 64)) & 1u;
        sum += positive ? q[i] : -static_cast<std::int64_t>(q[i]);
    }
    return sum;
}

std::size_t
matchCountWordsNeon(const std::uint64_t *a, const std::uint64_t *b,
                    std::size_t words, std::size_t dim)
{
    if (words == 0)
        return 0;
    const std::size_t body = words - 1;
    uint64x2_t acc = vdupq_n_u64(0);
    std::size_t w = 0;
    const std::size_t w2 = body & ~std::size_t{1};
    for (; w < w2; w += 2) {
        const uint64x2_t av = vld1q_u64(a + w);
        const uint64x2_t bv = vld1q_u64(b + w);
        // No vmvnq_u64 exists; NOT via the u32 view (bitwise op, the
        // lane width is irrelevant).
        const uint8x16_t xnor = vmvnq_u8(
            vreinterpretq_u8_u64(veorq_u64(av, bv)));
        acc = vaddq_u64(acc, vpaddlq_u32(vpaddlq_u16(
                                 vpaddlq_u8(vcntq_u8(xnor)))));
    }
    std::uint64_t matches = vaddvq_u64(acc);
    for (; w < body; ++w)
        matches += static_cast<std::uint64_t>(
            __builtin_popcountll(~(a[w] ^ b[w])));
    matches += static_cast<std::uint64_t>(__builtin_popcountll(
        ~(a[words - 1] ^ b[words - 1]) & tailMask64(dim)));
    return static_cast<std::size_t>(matches);
}

void
scoresBatchI8Neon(const std::int8_t *const *queries,
                  std::size_t numQueries,
                  const std::int8_t *const *rows, std::size_t numRows,
                  std::size_t n, std::int64_t *out)
{
    for (std::size_t q = 0; q < numQueries; ++q)
        for (std::size_t r = 0; r < numRows; ++r)
            out[q * numRows + r] = dotI8I8Neon(queries[q], rows[r], n);
}

} // namespace

const detail::KernelTable *
detail::neonTable()
{
    static const detail::KernelTable *table = [] {
        static detail::KernelTable t = *detail::scalarTable();
        t.impl = Impl::kNeon;
        t.dotInt = dotIntNeon;
        t.dotIntI8 = dotIntI8Neon;
        t.dotI8I8 = dotI8I8Neon;
        t.dotIntPackedWords = dotIntPackedWordsNeon;
        t.matchCountWords = matchCountWordsNeon;
        t.scoresBatchI8 = scoresBatchI8Neon;
        return &t;
    }();
    return table;
}

} // namespace lookhd::hdc::kernels

#else // not aarch64 NEON

namespace lookhd::hdc::kernels {

const detail::KernelTable *
detail::neonTable()
{
    return nullptr;
}

} // namespace lookhd::hdc::kernels

#endif
