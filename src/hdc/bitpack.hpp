/**
 * @file
 * Bit-packed bipolar hypervectors.
 *
 * A bipolar hypervector only carries one bit of information per
 * dimension (+1 -> 1, -1 -> 0). Packing 64 dimensions per word cuts
 * storage 8x versus int8 and lets similarity run on popcounts - this
 * is exactly how the paper's hardware stores level, position and key
 * hypervectors, and how binary HDC accelerators compute Hamming
 * distance.
 */

#ifndef LOOKHD_HDC_BITPACK_HPP
#define LOOKHD_HDC_BITPACK_HPP

#include <cstdint>
#include <vector>

#include "hdc/hypervector.hpp"

namespace lookhd::hdc {

/** Bipolar hypervector packed 64 dimensions per word. */
class PackedHv
{
  public:
    /** Empty (dimension 0). */
    PackedHv() = default;

    /** Pack a bipolar hypervector (+1 -> bit 1, -1 -> bit 0). */
    explicit PackedHv(const BipolarHv &hv);

    /** All-zero-bits (all -1) hypervector of dimension d. */
    explicit PackedHv(Dim d);

    /**
     * Adopt raw words (deserialization). @p words must hold exactly
     * ceil(d / 64) entries and the unused tail bits of the last word
     * must be zero (contract violation otherwise - a loader turns
     * that into its own error domain).
     */
    PackedHv(Dim d, std::vector<std::uint64_t> words);

    Dim dim() const { return dim_; }
    std::size_t words() const { return words_.size(); }

    /** Element at dimension @p i as +1 / -1. */
    int at(std::size_t i) const;

    /** Set dimension @p i to +1 (true) or -1 (false). */
    void set(std::size_t i, bool positive);

    /** Unpack back to a BipolarHv. */
    BipolarHv unpack() const;

    /** Storage bytes (the 8x win over int8 bipolar vectors). */
    std::size_t sizeBytes() const { return words_.size() * 8; }

    /** XOR-combine (binding of bipolar vectors is XOR of bits). */
    PackedHv bind(const PackedHv &other) const;

    /** Raw words (LSB of word 0 is dimension 0). */
    const std::vector<std::uint64_t> &data() const { return words_; }

    bool operator==(const PackedHv &other) const = default;

  private:
    /** Mask away the unused high bits of the last word. */
    void trimTail();

    Dim dim_ = 0;
    std::vector<std::uint64_t> words_;
};

/**
 * Number of agreeing dimensions between two packed hypervectors
 * (popcount-based). @pre equal dimensionality.
 */
std::size_t matchCount(const PackedHv &a, const PackedHv &b);

/** Normalized Hamming similarity in [0, 1] (popcount-based). */
double hammingSimilarity(const PackedHv &a, const PackedHv &b);

/** Dot product of packed bipolar vectors: 2 * matches - D. */
std::int64_t dot(const PackedHv &a, const PackedHv &b);

/**
 * Dot of an integer query with a packed bipolar vector (sign-resolved
 * accumulation, no multiplications).
 */
std::int64_t dot(const IntHv &query, const PackedHv &packed);

} // namespace lookhd::hdc

#endif // LOOKHD_HDC_BITPACK_HPP
