/**
 * @file
 * Unsupervised clustering in hyperdimensional space.
 *
 * The paper's related work applies HDC beyond classification - the
 * authors' own HDCluster/DUAL line ([19], [20]) clusters encoded
 * points with k-means-style iterations where a centroid is simply the
 * *bundle* (element-wise sum) of its members and similarity is
 * cosine. This module provides that algorithm over any encoder's
 * output, completing the library's coverage of the cognitive tasks
 * Sec. VII surveys.
 */

#ifndef LOOKHD_HDC_CLUSTERING_HPP
#define LOOKHD_HDC_CLUSTERING_HPP

#include <cstdint>
#include <vector>

#include "hdc/hypervector.hpp"

namespace lookhd::hdc {

/** Settings for hyperdimensional k-means. */
struct ClusterOptions
{
    std::size_t maxIterations = 25;

    /**
     * Converged when at most this fraction of points changes cluster
     * in an iteration.
     */
    double tolerance = 0.0;

    /** Seed for centroid initialization. */
    std::uint64_t seed = 17;
};

/** Outcome of a clustering run. */
struct ClusterResult
{
    /** Bundled (integer) centroid hypervectors, one per cluster. */
    std::vector<IntHv> centroids;
    /** Cluster index per input point. */
    std::vector<std::size_t> assignments;
    std::size_t iterations = 0;
    bool converged = false;

    /**
     * Mean cosine of each point to its centroid - the HDC analogue
     * of k-means inertia (higher is tighter).
     */
    double cohesion = 0.0;
};

/**
 * Cluster encoded hypervectors into @p k groups.
 *
 * Initialization picks k distinct input points as seeds; iterations
 * assign each point to the most-similar centroid (cosine) and
 * re-bundle. A cluster that empties is re-seeded with the point
 * least similar to its current centroid.
 *
 * @pre points non-empty, 1 <= k <= points.size(), uniform dims.
 */
ClusterResult clusterEncoded(const std::vector<IntHv> &points,
                             std::size_t k,
                             const ClusterOptions &options = {});

/**
 * Clustering purity against reference labels: the fraction of points
 * whose cluster's majority label matches their own. @pre equal sizes.
 */
double clusterPurity(const std::vector<std::size_t> &assignments,
                     const std::vector<std::size_t> &labels,
                     std::size_t num_clusters,
                     std::size_t num_labels);

} // namespace lookhd::hdc

#endif // LOOKHD_HDC_CLUSTERING_HPP
