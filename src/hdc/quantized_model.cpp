#include "hdc/quantized_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

#include "hdc/similarity.hpp"

namespace lookhd::hdc {

QuantizedModel::QuantizedModel(const ClassModel &model,
                               std::size_t bits)
    : dim_(model.dim()), bits_(bits)
{
    LOOKHD_CHECK(bits >= 1 && bits <= 16, "bits must be in [1, 16]");

    // Symmetric levels: b bits hold values in [-max_level, max_level]
    // with max_level = 2^(b-1) - 1 (and 1-bit degenerates to +-1).
    const double max_level =
        bits == 1 ? 1.0
                  : static_cast<double>((1 << (bits - 1)) - 1);

    classes_.reserve(model.numClasses());
    scales_.reserve(model.numClasses());
    norms_.reserve(model.numClasses());
    for (std::size_t c = 0; c < model.numClasses(); ++c) {
        const IntHv &hv = model.classHv(c);
        // Robust scale: map +-3 sigma onto the level range and let
        // the tail saturate. Peak-based scaling would waste nearly
        // every level on the heavy tail and round the bulk to zero.
        double sum2 = 0.0;
        for (auto v : hv)
            sum2 += static_cast<double>(v) * v;
        const double sigma =
            std::sqrt(sum2 / static_cast<double>(dim_));
        const double scale =
            sigma > 0.0 ? 3.0 * sigma / max_level : 1.0;
        scales_.push_back(scale);

        std::vector<std::int16_t> q(dim_);
        for (std::size_t i = 0; i < dim_; ++i) {
            double level = std::round(
                static_cast<double>(hv[i]) / scale);
            if (bits == 1)
                level = hv[i] < 0 ? -1.0 : 1.0;
            level = std::clamp(level, -max_level, max_level);
            q[i] = static_cast<std::int16_t>(level);
        }
        double norm2 = 0.0;
        for (auto v : q)
            norm2 += static_cast<double>(v) * v;
        norms_.push_back(std::sqrt(std::max(norm2, 1e-12)));
        classes_.push_back(std::move(q));
    }
}

std::vector<double>
QuantizedModel::scores(const IntHv &query) const
{
    LOOKHD_CHECK(query.size() == dim_, "query dimensionality mismatch");
    std::vector<double> out(classes_.size());
    for (std::size_t c = 0; c < classes_.size(); ++c) {
        std::int64_t sum = 0;
        const auto &hv = classes_[c];
        for (std::size_t i = 0; i < dim_; ++i)
            sum += static_cast<std::int64_t>(query[i]) * hv[i];
        out[c] = static_cast<double>(sum) / norms_[c];
    }
    return out;
}

std::size_t
QuantizedModel::predict(const IntHv &query) const
{
    return argmax(scores(query));
}

std::size_t
QuantizedModel::sizeBytes() const
{
    const std::size_t bits_total = classes_.size() * dim_ * bits_;
    return (bits_total + 7) / 8 + classes_.size() * sizeof(float);
}

} // namespace lookhd::hdc
