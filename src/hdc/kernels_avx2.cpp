/**
 * @file
 * AVX2 kernel implementations.
 *
 * Compiled with -mavx2 -mpopcnt -ffp-contract=off (and only then;
 * otherwise this TU degrades to an always-null avx2Table()). The
 * double kernels reproduce kernels.cpp's 4-lane accumulation contract
 * exactly: one __m256d accumulator holds the four partial sums, mul
 * and add stay separate instructions (no FMA - the flag set above
 * does not enable it and contraction is off), and the reduction
 * (l0 + l1) + (l2 + l3) plus the scalar tail match the scalar
 * reference op for op, so results are bit-identical across
 * implementations. Keep in lockstep with kernels.cpp.
 */

#include "hdc/kernels.hpp"

#if defined(__AVX2__) && defined(__POPCNT__)

#include <algorithm>
#include <cstring>
#include <immintrin.h>

namespace lookhd::hdc::kernels {

namespace {

/** (l0 + l1) + (l2 + l3) over the accumulator's lanes, in order. */
double
reduceLanes(__m256d acc)
{
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, acc);
    return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

/** Four int32 -> four double. */
__m256d
loadInt4AsDouble(const std::int32_t *p)
{
    return _mm256_cvtepi32_pd(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(p)));
}

/** Four +-1 int8 -> four double. */
__m256d
loadSign4AsDouble(const std::int8_t *p)
{
    std::int32_t packed;
    std::memcpy(&packed, p, sizeof(packed));
    return _mm256_cvtepi32_pd(
        _mm_cvtepi8_epi32(_mm_cvtsi32_si128(packed)));
}

std::int64_t
dotIntAvx2(const std::int32_t *a, const std::int32_t *b,
           std::size_t n)
{
    __m256i acc = _mm256_setzero_si256();
    std::size_t i = 0;
    const std::size_t n4 = n & ~std::size_t{3};
    for (; i < n4; i += 4) {
        // Widen to int64 lanes; vpmuldq multiplies each lane's low 32
        // bits as signed, giving the exact 64-bit product.
        const __m256i a64 = _mm256_cvtepi32_epi64(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(a + i)));
        const __m256i b64 = _mm256_cvtepi32_epi64(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(b + i)));
        acc = _mm256_add_epi64(acc, _mm256_mul_epi32(a64, b64));
    }
    alignas(32) std::int64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc);
    std::int64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for (; i < n; ++i)
        sum += static_cast<std::int64_t>(a[i]) * b[i];
    return sum;
}

std::int64_t
dotIntI8Avx2(const std::int32_t *a, const std::int8_t *signs,
             std::size_t n)
{
    __m256i acc = _mm256_setzero_si256();
    std::size_t i = 0;
    const std::size_t n4 = n & ~std::size_t{3};
    for (; i < n4; i += 4) {
        const __m256i a64 = _mm256_cvtepi32_epi64(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(a + i)));
        std::int32_t packed;
        std::memcpy(&packed, signs + i, sizeof(packed));
        const __m256i s64 = _mm256_cvtepi32_epi64(
            _mm_cvtepi8_epi32(_mm_cvtsi32_si128(packed)));
        acc = _mm256_add_epi64(acc, _mm256_mul_epi32(a64, s64));
    }
    alignas(32) std::int64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc);
    std::int64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for (; i < n; ++i)
        sum += static_cast<std::int64_t>(a[i]) * signs[i];
    return sum;
}

std::int64_t
dotI8I8Avx2(const std::int8_t *a, const std::int8_t *b,
            std::size_t n)
{
    // 16 int8 per step: sign-extend both sides to int16 and let
    // vpmaddwd produce eight int32 pair-sums (each at most
    // 2 * 127 * 127 = 32258). The epi32 accumulator is widened into
    // the int64 total every kBlock steps, long before a lane can
    // reach INT32_MAX (32258 * 66570 overflows; kBlock << that).
    constexpr std::size_t kBlock = 8192;
    std::int64_t sum = 0;
    std::size_t i = 0;
    const std::size_t n16 = n & ~std::size_t{15};
    while (i < n16) {
        const std::size_t stop =
            std::min(n16, i + kBlock * std::size_t{16});
        __m256i acc = _mm256_setzero_si256();
        for (; i < stop; i += 16) {
            const __m256i a16 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(a + i)));
            const __m256i b16 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(b + i)));
            acc = _mm256_add_epi32(acc,
                                   _mm256_madd_epi16(a16, b16));
        }
        alignas(32) std::int32_t lanes[8];
        _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc);
        for (const std::int32_t lane : lanes)
            sum += lane;
    }
    for (; i < n; ++i)
        sum += static_cast<std::int64_t>(a[i]) * b[i];
    return sum;
}

std::int64_t
dotIntPackedWordsAvx2(const std::int32_t *q,
                      const std::uint64_t *words, std::size_t n)
{
    // Four elements per step: the nibble of packed sign bits selects
    // a +-1 int32 quadruple from the LUT; the multiply-accumulate
    // then mirrors dotIntI8Avx2 (widen to int64 lanes, vpmuldq), so
    // negation happens in 64-bit exactly like the scalar reference.
    alignas(16) static constexpr std::int32_t kSignLut[16][4] = {
        {-1, -1, -1, -1}, {+1, -1, -1, -1}, {-1, +1, -1, -1},
        {+1, +1, -1, -1}, {-1, -1, +1, -1}, {+1, -1, +1, -1},
        {-1, +1, +1, -1}, {+1, +1, +1, -1}, {-1, -1, -1, +1},
        {+1, -1, -1, +1}, {-1, +1, -1, +1}, {+1, +1, -1, +1},
        {-1, -1, +1, +1}, {+1, -1, +1, +1}, {-1, +1, +1, +1},
        {+1, +1, +1, +1}};
    __m256i acc = _mm256_setzero_si256();
    std::size_t i = 0;
    const std::size_t n4 = n & ~std::size_t{3};
    for (; i < n4; i += 4) {
        const unsigned nibble =
            static_cast<unsigned>(words[i / 64] >> (i % 64)) & 0xfu;
        const __m256i s64 = _mm256_cvtepi32_epi64(_mm_load_si128(
            reinterpret_cast<const __m128i *>(kSignLut[nibble])));
        const __m256i q64 = _mm256_cvtepi32_epi64(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(q + i)));
        acc = _mm256_add_epi64(acc, _mm256_mul_epi32(q64, s64));
    }
    alignas(32) std::int64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc);
    std::int64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for (; i < n; ++i) {
        const bool positive = (words[i / 64] >> (i % 64)) & 1u;
        sum += positive ? q[i] : -static_cast<std::int64_t>(q[i]);
    }
    return sum;
}

double
dotIntRealAvx2(const std::int32_t *q, const double *row,
               std::size_t n)
{
    __m256d acc = _mm256_setzero_pd();
    std::size_t i = 0;
    const std::size_t n4 = n & ~std::size_t{3};
    for (; i < n4; i += 4) {
        acc = _mm256_add_pd(
            acc, _mm256_mul_pd(loadInt4AsDouble(q + i),
                               _mm256_loadu_pd(row + i)));
    }
    double sum = reduceLanes(acc);
    for (; i < n; ++i)
        sum += static_cast<double>(q[i]) * row[i];
    return sum;
}

double
dotRealI8Avx2(const double *values, const std::int8_t *signs,
              std::size_t n)
{
    __m256d acc = _mm256_setzero_pd();
    std::size_t i = 0;
    const std::size_t n4 = n & ~std::size_t{3};
    for (; i < n4; i += 4) {
        acc = _mm256_add_pd(
            acc, _mm256_mul_pd(_mm256_loadu_pd(values + i),
                               loadSign4AsDouble(signs + i)));
    }
    double sum = reduceLanes(acc);
    for (; i < n; ++i)
        sum += values[i] * static_cast<double>(signs[i]);
    return sum;
}

void
mulIntRealAvx2(const std::int32_t *a, const double *b, double *out,
               std::size_t n)
{
    std::size_t i = 0;
    const std::size_t n4 = n & ~std::size_t{3};
    for (; i < n4; i += 4) {
        _mm256_storeu_pd(out + i,
                         _mm256_mul_pd(loadInt4AsDouble(a + i),
                                       _mm256_loadu_pd(b + i)));
    }
    for (; i < n; ++i)
        out[i] = static_cast<double>(a[i]) * b[i];
}

void
addSignedI8Avx2(std::int32_t *acc, const std::int32_t *row,
                const std::int8_t *signs, std::size_t n)
{
    std::size_t i = 0;
    const std::size_t n8 = n & ~std::size_t{7};
    for (; i < n8; i += 8) {
        const __m256i r = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(row + i));
        const __m256i s = _mm256_cvtepi8_epi32(_mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(signs + i)));
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(acc + i));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(acc + i),
            _mm256_add_epi32(a, _mm256_mullo_epi32(r, s)));
    }
    for (; i < n; ++i)
        acc[i] += row[i] * signs[i];
}

std::size_t
matchCountWordsAvx2(const std::uint64_t *a, const std::uint64_t *b,
                    std::size_t words, std::size_t dim)
{
    if (words == 0)
        return 0;
    std::uint64_t matches = 0;
    // Hardware popcnt (this TU carries -mpopcnt); bit-exact with the
    // scalar std::popcount path by definition.
    for (std::size_t w = 0; w + 1 < words; ++w)
        matches += static_cast<std::uint64_t>(
            _mm_popcnt_u64(~(a[w] ^ b[w])));
    matches += static_cast<std::uint64_t>(_mm_popcnt_u64(
        ~(a[words - 1] ^ b[words - 1]) & tailMask64(dim)));
    return static_cast<std::size_t>(matches);
}

void
similarityBatchAvx2(const std::int32_t *const *queries,
                    std::size_t numQueries,
                    const double *const *rows, std::size_t numRows,
                    std::size_t n, double *out)
{
    // Block four queries per class-row pass: each row streams from
    // memory once per block while four accumulators live in
    // registers. Per (query, row) pair the operation sequence is
    // identical to dotIntRealAvx2, so results match the single-query
    // kernel bit for bit.
    constexpr std::size_t kBlock = 4;
    const std::size_t n4 = n & ~std::size_t{3};
    for (std::size_t qb = 0; qb < numQueries; qb += kBlock) {
        const std::size_t qn = std::min(kBlock, numQueries - qb);
        for (std::size_t r = 0; r < numRows; ++r) {
            const double *row = rows[r];
            __m256d acc[kBlock] = {
                _mm256_setzero_pd(), _mm256_setzero_pd(),
                _mm256_setzero_pd(), _mm256_setzero_pd()};
            for (std::size_t i = 0; i < n4; i += 4) {
                const __m256d rd = _mm256_loadu_pd(row + i);
                for (std::size_t j = 0; j < qn; ++j) {
                    acc[j] = _mm256_add_pd(
                        acc[j],
                        _mm256_mul_pd(
                            loadInt4AsDouble(queries[qb + j] + i),
                            rd));
                }
            }
            for (std::size_t j = 0; j < qn; ++j) {
                double sum = reduceLanes(acc[j]);
                const std::int32_t *q = queries[qb + j];
                for (std::size_t i = n4; i < n; ++i)
                    sum += static_cast<double>(q[i]) * row[i];
                out[(qb + j) * numRows + r] = sum;
            }
        }
    }
}

void
scoresBatchI8Avx2(const std::int8_t *const *queries,
                  std::size_t numQueries,
                  const std::int8_t *const *rows, std::size_t numRows,
                  std::size_t n, std::int64_t *out)
{
    // Integer arithmetic is exact, so per-pair delegation to the
    // single-query kernel is bit-identical by construction; the int8
    // rows are 8x denser than the double path, so memory re-streaming
    // per query is cheap.
    for (std::size_t q = 0; q < numQueries; ++q)
        for (std::size_t r = 0; r < numRows; ++r)
            out[q * numRows + r] = dotI8I8Avx2(queries[q], rows[r], n);
}

constexpr detail::KernelTable kAvx2Table = {
    Impl::kAvx2,
    dotIntAvx2,
    dotIntI8Avx2,
    dotI8I8Avx2,
    dotIntPackedWordsAvx2,
    dotIntRealAvx2,
    dotRealI8Avx2,
    mulIntRealAvx2,
    addSignedI8Avx2,
    matchCountWordsAvx2,
    similarityBatchAvx2,
    scoresBatchI8Avx2,
};

bool
cpuSupported()
{
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_cpu_supports("avx2") != 0 &&
           __builtin_cpu_supports("popcnt") != 0;
#else
    return false;
#endif
}

} // namespace

const detail::KernelTable *
detail::avx2Table()
{
    static const detail::KernelTable *table =
        cpuSupported() ? &kAvx2Table : nullptr;
    return table;
}

} // namespace lookhd::hdc::kernels

#else // !(__AVX2__ && __POPCNT__)

namespace lookhd::hdc::kernels {

const detail::KernelTable *
detail::avx2Table()
{
    return nullptr;
}

} // namespace lookhd::hdc::kernels

#endif
