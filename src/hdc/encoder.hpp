/**
 * @file
 * Baseline permutation-based HDC encoder (paper Eq. 1).
 *
 * This is the encoding used by the state-of-the-art HDC systems the
 * paper compares against: each feature value selects a level
 * hypervector, each feature index applies a rotation, and the rotated
 * level hypervectors are summed:
 *
 *   H = L(f_1) + rho L(f_2) + ... + rho^{n-1} L(f_n)
 *
 * Its cost is O(n * D) per data point, which is what dominates
 * baseline training time (Fig. 2) and what LookHD eliminates.
 */

#ifndef LOOKHD_HDC_ENCODER_HPP
#define LOOKHD_HDC_ENCODER_HPP

#include <memory>
#include <span>

#include "hdc/item_memory.hpp"
#include "quant/quantizer.hpp"
#include "quant/quantizer_bank.hpp"

namespace lookhd::hdc {

/** Permutation (rotation) encoder over a level memory. */
class BaselineEncoder
{
  public:
    /**
     * @param levels Level memory shared with the rest of the model.
     * @param quantizer Fitted quantizer with levels() == levels.levels().
     */
    BaselineEncoder(std::shared_ptr<const LevelMemory> levels,
                    std::shared_ptr<const quant::Quantizer> quantizer);

    /** Per-feature quantization variant. */
    BaselineEncoder(std::shared_ptr<const LevelMemory> levels,
                    std::shared_ptr<const quant::QuantizerBank> bank);

    Dim dim() const { return levels_->dim(); }
    std::size_t quantLevels() const { return levels_->levels(); }

    /** Encode a raw feature vector (Eq. 1). */
    IntHv encode(std::span<const double> features) const;

    /** Encode already-quantized level indices (Eq. 1). */
    IntHv encodeLevels(std::span<const std::size_t> levels) const;

    const LevelMemory &levelMemory() const { return *levels_; }

    /** Whether this encoder quantizes per feature. */
    bool usesBank() const { return bank_ != nullptr; }

    /** The global quantizer. @pre !usesBank(). */
    const quant::Quantizer &quantizer() const;

  private:
    std::shared_ptr<const LevelMemory> levels_;
    std::shared_ptr<const quant::Quantizer> quantizer_;
    std::shared_ptr<const quant::QuantizerBank> bank_;
};

} // namespace lookhd::hdc

#endif // LOOKHD_HDC_ENCODER_HPP
