/**
 * @file
 * Scalar reference kernels + runtime dispatch.
 *
 * The scalar implementations here are the specification: the double
 * kernels spell out the 4-lane accumulation contract the AVX2
 * translation unit must reproduce bit-for-bit (see kernels.hpp).
 * Keep them boring and in lockstep with kernels_avx2.cpp.
 */

#include "hdc/kernels.hpp"

#include <atomic>
#include <bit>
#include <stdexcept>
#include <string>

namespace lookhd::hdc::kernels {

namespace {

std::int64_t
dotIntScalar(const std::int32_t *a, const std::int32_t *b,
             std::size_t n)
{
    std::int64_t sum = 0;
    for (std::size_t i = 0; i < n; ++i)
        sum += static_cast<std::int64_t>(a[i]) * b[i];
    return sum;
}

std::int64_t
dotIntI8Scalar(const std::int32_t *a, const std::int8_t *signs,
               std::size_t n)
{
    std::int64_t sum = 0;
    for (std::size_t i = 0; i < n; ++i)
        sum += static_cast<std::int64_t>(a[i]) * signs[i];
    return sum;
}

std::int64_t
dotI8I8Scalar(const std::int8_t *a, const std::int8_t *b,
              std::size_t n)
{
    std::int64_t sum = 0;
    for (std::size_t i = 0; i < n; ++i)
        sum += static_cast<std::int64_t>(a[i]) * b[i];
    return sum;
}

std::int64_t
dotIntPackedWordsScalar(const std::int32_t *q,
                        const std::uint64_t *words, std::size_t n)
{
    std::int64_t sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const bool positive = (words[i / 64] >> (i % 64)) & 1u;
        sum += positive ? q[i] : -static_cast<std::int64_t>(q[i]);
    }
    return sum;
}

double
dotIntRealScalar(const std::int32_t *q, const double *row,
                 std::size_t n)
{
    // The 4-lane contract: independent partial sums over i % 4,
    // reduced (l0 + l1) + (l2 + l3), sequential tail.
    double l0 = 0.0;
    double l1 = 0.0;
    double l2 = 0.0;
    double l3 = 0.0;
    std::size_t i = 0;
    const std::size_t n4 = n & ~std::size_t{3};
    for (; i < n4; i += 4) {
        l0 += static_cast<double>(q[i]) * row[i];
        l1 += static_cast<double>(q[i + 1]) * row[i + 1];
        l2 += static_cast<double>(q[i + 2]) * row[i + 2];
        l3 += static_cast<double>(q[i + 3]) * row[i + 3];
    }
    double sum = (l0 + l1) + (l2 + l3);
    for (; i < n; ++i)
        sum += static_cast<double>(q[i]) * row[i];
    return sum;
}

double
dotRealI8Scalar(const double *values, const std::int8_t *signs,
                std::size_t n)
{
    // Multiplying by +-1.0 is exact (a sign flip), so this equals the
    // branchy "signs[i] >= 0 ? v : -v" form lane for lane.
    double l0 = 0.0;
    double l1 = 0.0;
    double l2 = 0.0;
    double l3 = 0.0;
    std::size_t i = 0;
    const std::size_t n4 = n & ~std::size_t{3};
    for (; i < n4; i += 4) {
        l0 += values[i] * static_cast<double>(signs[i]);
        l1 += values[i + 1] * static_cast<double>(signs[i + 1]);
        l2 += values[i + 2] * static_cast<double>(signs[i + 2]);
        l3 += values[i + 3] * static_cast<double>(signs[i + 3]);
    }
    double sum = (l0 + l1) + (l2 + l3);
    for (; i < n; ++i)
        sum += values[i] * static_cast<double>(signs[i]);
    return sum;
}

void
mulIntRealScalar(const std::int32_t *a, const double *b, double *out,
                 std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = static_cast<double>(a[i]) * b[i];
}

void
addSignedI8Scalar(std::int32_t *acc, const std::int32_t *row,
                  const std::int8_t *signs, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        acc[i] += row[i] * signs[i];
}

std::size_t
matchCountWordsScalar(const std::uint64_t *a, const std::uint64_t *b,
                      std::size_t words, std::size_t dim)
{
    if (words == 0)
        return 0;
    std::size_t matches = 0;
    for (std::size_t w = 0; w + 1 < words; ++w)
        matches += static_cast<std::size_t>(
            std::popcount(~(a[w] ^ b[w])));
    matches += static_cast<std::size_t>(std::popcount(
        ~(a[words - 1] ^ b[words - 1]) & tailMask64(dim)));
    return matches;
}

void
similarityBatchScalar(const std::int32_t *const *queries,
                      std::size_t numQueries,
                      const double *const *rows, std::size_t numRows,
                      std::size_t n, double *out)
{
    for (std::size_t q = 0; q < numQueries; ++q)
        for (std::size_t r = 0; r < numRows; ++r)
            out[q * numRows + r] =
                dotIntRealScalar(queries[q], rows[r], n);
}

void
scoresBatchI8Scalar(const std::int8_t *const *queries,
                    std::size_t numQueries,
                    const std::int8_t *const *rows,
                    std::size_t numRows, std::size_t n,
                    std::int64_t *out)
{
    for (std::size_t q = 0; q < numQueries; ++q)
        for (std::size_t r = 0; r < numRows; ++r)
            out[q * numRows + r] = dotI8I8Scalar(queries[q], rows[r], n);
}

constexpr detail::KernelTable kScalarTable = {
    Impl::kScalar,
    dotIntScalar,
    dotIntI8Scalar,
    dotI8I8Scalar,
    dotIntPackedWordsScalar,
    dotIntRealScalar,
    dotRealI8Scalar,
    mulIntRealScalar,
    addSignedI8Scalar,
    matchCountWordsScalar,
    similarityBatchScalar,
    scoresBatchI8Scalar,
};

const detail::KernelTable *
tableFor(Impl impl)
{
    switch (impl) {
    case Impl::kScalar:
        return &kScalarTable;
    case Impl::kAvx2:
        return detail::avx2Table();
    case Impl::kAvx512:
        return detail::avx512Table();
    case Impl::kNeon:
        return detail::neonTable();
    }
    return nullptr;
}

/** Best table the CPU supports; resolved once, never changes. */
const detail::KernelTable *
bestTable()
{
    static const detail::KernelTable *best = [] {
        if (const detail::KernelTable *avx512 = detail::avx512Table())
            return avx512;
        if (const detail::KernelTable *avx2 = detail::avx2Table())
            return avx2;
        if (const detail::KernelTable *neon = detail::neonTable())
            return neon;
        return &kScalarTable;
    }();
    return best;
}

/** Forced table (forceImpl), nullptr = use bestTable(). */
std::atomic<const detail::KernelTable *> gForced{nullptr};

const detail::KernelTable &
active()
{
    if (const detail::KernelTable *forced =
            gForced.load(std::memory_order_acquire))
        return *forced;
    return *bestTable();
}

} // namespace

namespace detail {

const KernelTable *
scalarTable()
{
    return &kScalarTable;
}

} // namespace detail

const char *
implName(Impl impl)
{
    switch (impl) {
    case Impl::kScalar:
        return "scalar";
    case Impl::kAvx2:
        return "avx2";
    case Impl::kAvx512:
        return "avx512";
    case Impl::kNeon:
        return "neon";
    }
    return "unknown";
}

bool
implAvailable(Impl impl)
{
    return tableFor(impl) != nullptr;
}

Impl
activeImpl()
{
    return active().impl;
}

void
forceImpl(Impl impl)
{
    const detail::KernelTable *table = tableFor(impl);
    if (table == nullptr)
        throw std::invalid_argument(
            std::string("kernel implementation unavailable: ") +
            implName(impl));
    gForced.store(table, std::memory_order_release);
}

void
clearForcedImpl()
{
    gForced.store(nullptr, std::memory_order_release);
}

std::int64_t
dotInt(const std::int32_t *a, const std::int32_t *b, std::size_t n)
{
    return active().dotInt(a, b, n);
}

std::int64_t
dotIntI8(const std::int32_t *a, const std::int8_t *signs,
         std::size_t n)
{
    return active().dotIntI8(a, signs, n);
}

std::int64_t
dotI8I8(const std::int8_t *a, const std::int8_t *b, std::size_t n)
{
    return active().dotI8I8(a, b, n);
}

std::int64_t
dotIntPackedWords(const std::int32_t *q, const std::uint64_t *words,
                  std::size_t n)
{
    return active().dotIntPackedWords(q, words, n);
}

double
dotIntReal(const std::int32_t *q, const double *row, std::size_t n)
{
    return active().dotIntReal(q, row, n);
}

double
dotRealI8(const double *values, const std::int8_t *signs,
          std::size_t n)
{
    return active().dotRealI8(values, signs, n);
}

void
mulIntReal(const std::int32_t *a, const double *b, double *out,
           std::size_t n)
{
    active().mulIntReal(a, b, out, n);
}

void
addSignedI8(std::int32_t *acc, const std::int32_t *row,
            const std::int8_t *signs, std::size_t n)
{
    active().addSignedI8(acc, row, signs, n);
}

std::size_t
matchCountWords(const std::uint64_t *a, const std::uint64_t *b,
                std::size_t words, std::size_t dim)
{
    return active().matchCountWords(a, b, words, dim);
}

void
similarityBatch(const std::int32_t *const *queries,
                std::size_t numQueries, const double *const *rows,
                std::size_t numRows, std::size_t n, double *out)
{
    active().similarityBatch(queries, numQueries, rows, numRows, n,
                             out);
}

void
scoresBatchI8(const std::int8_t *const *queries,
              std::size_t numQueries, const std::int8_t *const *rows,
              std::size_t numRows, std::size_t n, std::int64_t *out)
{
    active().scoresBatchI8(queries, numQueries, rows, numRows, n,
                           out);
}

} // namespace lookhd::hdc::kernels
