/**
 * @file
 * Record-based HDC encoder (ID-value binding).
 *
 * The HDC literature has two canonical feature-vector encodings. The
 * paper's baseline (and LookHD) use the permutation flavour, where
 * feature position is a rotation (hdc::BaselineEncoder). The other -
 * used by OnlineHD and much of the related work - assigns each
 * feature a random ID hypervector and binds it with the feature's
 * level hypervector:
 *
 *   H = ID_1 * L(f_1) + ID_2 * L(f_2) + ... + ID_n * L(f_n)
 *
 * Both preserve position; they differ in memory (n ID hypervectors vs
 * none) and in hardware cost (bind vs rotate). Providing both lets
 * experiments compare the encodings on equal footing.
 */

#ifndef LOOKHD_HDC_RECORD_ENCODER_HPP
#define LOOKHD_HDC_RECORD_ENCODER_HPP

#include <memory>
#include <span>

#include "hdc/item_memory.hpp"
#include "quant/quantizer.hpp"

namespace lookhd::hdc {

/** ID-value binding encoder over a level memory. */
class RecordEncoder
{
  public:
    /**
     * @param levels Level memory (values).
     * @param quantizer Fitted quantizer matching levels.
     * @param num_features Feature count n (one ID per feature).
     * @param rng Source for the ID hypervectors.
     */
    RecordEncoder(std::shared_ptr<const LevelMemory> levels,
                  std::shared_ptr<const quant::Quantizer> quantizer,
                  std::size_t num_features, util::Rng &rng);

    Dim dim() const { return levels_->dim(); }
    std::size_t numFeatures() const { return ids_.count(); }

    /** Encode a raw feature vector. */
    IntHv encode(std::span<const double> features) const;

    /** The per-feature ID hypervectors. */
    const KeyMemory &ids() const { return ids_; }

    const LevelMemory &levelMemory() const { return *levels_; }

  private:
    std::shared_ptr<const LevelMemory> levels_;
    std::shared_ptr<const quant::Quantizer> quantizer_;
    KeyMemory ids_;
};

} // namespace lookhd::hdc

#endif // LOOKHD_HDC_RECORD_ENCODER_HPP
