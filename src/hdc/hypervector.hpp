/**
 * @file
 * Hypervector types and element-wise operations.
 *
 * HDC represents information as very wide vectors ("hypervectors",
 * D in the thousands). Three concrete representations appear in the
 * paper and in this library:
 *
 *  - BipolarHv: elements in {-1, +1}; level, position and key
 *    hypervectors.
 *  - IntHv: integer accumulations of bipolar hypervectors; encoded
 *    data points and trained class hypervectors.
 *  - RealHv: real-valued vectors; normalized class hypervectors and
 *    decorrelated models.
 *
 * All operations take the dimensionality from the operands and check
 * agreement with assertions (mismatched dimensions are programming
 * errors, not user errors).
 */

#ifndef LOOKHD_HDC_HYPERVECTOR_HPP
#define LOOKHD_HDC_HYPERVECTOR_HPP

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace lookhd::hdc {

/** Hypervector dimensionality. */
using Dim = std::size_t;

/** Bipolar hypervector, elements constrained to -1 or +1. */
using BipolarHv = std::vector<std::int8_t>;

/** Integer hypervector (accumulation domain). */
using IntHv = std::vector<std::int32_t>;

/** Real-valued hypervector. */
using RealHv = std::vector<double>;

/** Generate a uniformly random bipolar hypervector of dimension d. */
BipolarHv randomBipolar(Dim d, util::Rng &rng);

/**
 * Circular rotation by @p shift positions (the paper's permutation
 * rho^shift). Element i of the result is element (i - shift) mod D of
 * the input, i.e. the pattern moves "right".
 */
BipolarHv rotate(const BipolarHv &hv, std::size_t shift);

/** Circular rotation of an integer hypervector. */
IntHv rotate(const IntHv &hv, std::size_t shift);

/**
 * Accumulate @p hv rotated by @p shift into @p acc without
 * materializing the rotation: acc[(i + shift) % D] += hv[i].
 */
void addRotated(IntHv &acc, const BipolarHv &hv, std::size_t shift);

/** Element-wise acc += hv. */
void addInto(IntHv &acc, const IntHv &hv);

/** Element-wise acc -= hv. */
void subtractFrom(IntHv &acc, const IntHv &hv);

/**
 * Binding: element-wise product with a bipolar key, i.e. a sign flip
 * wherever the key is -1. Binding with the same key twice is the
 * identity.
 */
IntHv bind(const BipolarHv &key, const IntHv &hv);

/** Binding of two bipolar hypervectors (result is bipolar). */
BipolarHv bind(const BipolarHv &a, const BipolarHv &b);

/** In-place binding: hv *= key element-wise. */
void bindInto(IntHv &hv, const BipolarHv &key);

/** Element-wise sign; zero maps to +1 (a fixed tie-break). */
BipolarHv sign(const IntHv &hv);

/** Widening dot product of integer hypervectors. */
std::int64_t dot(const IntHv &a, const IntHv &b);

/** Dot product of an integer and a bipolar hypervector. */
std::int64_t dot(const IntHv &a, const BipolarHv &b);

/** Dot product of two bipolar hypervectors. */
std::int64_t dot(const BipolarHv &a, const BipolarHv &b);

/** Dot product of an integer and a real hypervector. */
double dot(const IntHv &a, const RealHv &b);

/** Dot product of two real hypervectors. */
double dot(const RealHv &a, const RealHv &b);

/** Euclidean norm. */
double norm(const IntHv &hv);

/** Euclidean norm. */
double norm(const RealHv &hv);

/** Convert to the real domain. */
RealHv toReal(const IntHv &hv);

/** Scale to unit Euclidean norm; an all-zero vector stays zero. */
RealHv normalized(const IntHv &hv);

/** Scale to unit Euclidean norm; an all-zero vector stays zero. */
RealHv normalized(const RealHv &hv);

} // namespace lookhd::hdc

#endif // LOOKHD_HDC_HYPERVECTOR_HPP
