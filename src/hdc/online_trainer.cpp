#include "hdc/online_trainer.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "util/check.hpp"

#include "hdc/similarity.hpp"
#include "hdc/trainer.hpp"

namespace lookhd::hdc {

namespace {

/** Scale-and-add: acc += weight * hv, rounded to keep integers. */
void
addScaled(IntHv &acc, const IntHv &hv, double weight)
{
    for (std::size_t i = 0; i < acc.size(); ++i) {
        acc[i] += static_cast<std::int32_t>(
            std::lround(weight * static_cast<double>(hv[i])));
    }
}

} // namespace

OnlineTrainResult
onlineTrain(const std::vector<IntHv> &encoded,
            const std::vector<std::size_t> &labels, Dim dim,
            std::size_t num_classes, const OnlineTrainOptions &options)
{
    LOOKHD_CHECK(encoded.size() == labels.size() && !encoded.empty(),
                 "encoded/labels size mismatch");
    LOOKHD_CHECK(options.epochs != 0, "online training needs >= 1 pass");

    LOOKHD_SPAN("hdc.online_train", "train");
    LOOKHD_COUNT_ADD("hdc.online_train.samples",
                     encoded.size() * options.epochs);
    OnlineTrainResult result{ClassModel(dim, num_classes), {}};
    ClassModel &model = result.model;
    model.normalize();

    for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
        LOOKHD_SPAN("hdc.online_train.epoch", "train");
        for (std::size_t i = 0; i < encoded.size(); ++i) {
            const IntHv &h = encoded[i];
            const std::size_t truth = labels[i];

            // Cosine similarities against the current model. An
            // all-zero class (early in the first pass) scores 0.
            std::vector<double> sims(num_classes);
            const double h_norm = norm(h);
            for (std::size_t c = 0; c < num_classes; ++c) {
                const double c_norm = norm(model.classHv(c));
                sims[c] = (h_norm > 0.0 && c_norm > 0.0)
                              ? static_cast<double>(
                                    dot(h, model.classHv(c))) /
                                    (h_norm * c_norm)
                              : 0.0;
            }
            const std::size_t pred = argmax(sims);

            if (pred != truth) {
                const double pull = options.learningRate *
                                    (1.0 - sims[truth]);
                const double push = options.learningRate *
                                    (1.0 - sims[pred]);
                addScaled(model.classHv(truth), h, pull);
                addScaled(model.classHv(pred), h, -push);
            } else if (options.updateOnCorrect) {
                const double pull = options.learningRate *
                                    (1.0 - sims[truth]);
                addScaled(model.classHv(truth), h, pull);
            }
        }
        model.normalize();
        result.accuracyHistory.push_back(
            evaluateEncoded(model, encoded, labels));
    }
    return result;
}

} // namespace lookhd::hdc
