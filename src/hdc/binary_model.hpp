/**
 * @file
 * Binarized HDC model, the related-work baseline of Sec. VII.
 *
 * Several prior HDC systems (and most in-memory accelerators) keep
 * only the element-wise sign of each trained class hypervector and
 * classify with Hamming similarity on similarly binarized queries.
 * The paper reports that this loses substantial accuracy on practical
 * workloads (~17.5% below LookHD on average), which
 * bench_binary_vs_lookhd reproduces in trend.
 */

#ifndef LOOKHD_HDC_BINARY_MODEL_HPP
#define LOOKHD_HDC_BINARY_MODEL_HPP

#include <vector>

#include "hdc/bitpack.hpp"
#include "hdc/model.hpp"

namespace lookhd::hdc {

/**
 * Sign-binarized class model classified by Hamming similarity.
 * Class hypervectors are stored bit-packed (one bit per dimension,
 * the storage the binary accelerators of Sec. VII actually use) and
 * similarity runs on popcounts.
 */
class BinaryModel
{
  public:
    /** Binarize a trained non-binary model. */
    explicit BinaryModel(const ClassModel &model);

    Dim dim() const { return dim_; }
    std::size_t numClasses() const { return classes_.size(); }

    /** Packed class hypervector. */
    const PackedHv &packedClassHv(std::size_t c) const
    {
        return classes_.at(c);
    }

    /** Unpacked view of one class (convenience for tests/inspection). */
    BipolarHv classHv(std::size_t c) const
    {
        return classes_.at(c).unpack();
    }

    /** Hamming-similarity scores of a binarized query. */
    std::vector<double> scores(const IntHv &query) const;

    /** Predicted class of a (non-binarized) query. */
    std::size_t predict(const IntHv &query) const;

    /** Model size in bytes: one bit per dimension per class. */
    std::size_t sizeBytes() const;

  private:
    Dim dim_;
    std::vector<PackedHv> classes_;
};

} // namespace lookhd::hdc

#endif // LOOKHD_HDC_BINARY_MODEL_HPP
