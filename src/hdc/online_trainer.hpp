/**
 * @file
 * OnlineHD-style adaptive single-pass training.
 *
 * The paper cites OnlineHD [13] as the state of the art for on-device
 * learning: instead of adding every encoded point at full weight, the
 * update is scaled by how *poorly* the model already represents the
 * point,
 *
 *   C_correct += (1 - delta_correct) * H
 *   C_wrong   -= (1 - delta_wrong)   * H   (on mispredictions)
 *
 * where delta is the cosine similarity to the respective class. Easy
 * points barely move the model; hard points move it a lot. One pass
 * often reaches the accuracy the plain perceptron needs several
 * retraining epochs for - this module provides that alternative
 * trainer for the uncompressed model, with tests and an ablation
 * bench comparing it against initial-train + retraining.
 */

#ifndef LOOKHD_HDC_ONLINE_TRAINER_HPP
#define LOOKHD_HDC_ONLINE_TRAINER_HPP

#include <vector>

#include "data/dataset.hpp"
#include "hdc/model.hpp"

namespace lookhd::hdc {

/** Settings of the adaptive online trainer. */
struct OnlineTrainOptions
{
    /** Passes over the data (OnlineHD typically needs 1-2). */
    std::size_t epochs = 1;

    /** Global multiplier on the adaptive step. */
    double learningRate = 1.0;

    /**
     * Also damp the reinforcement of the correct class when the point
     * is already classified correctly (pure OnlineHD behaviour). When
     * false, correctly classified points are skipped entirely.
     */
    bool updateOnCorrect = true;
};

/** Result of an online training run. */
struct OnlineTrainResult
{
    ClassModel model;
    /** Training accuracy measured after each pass. */
    std::vector<double> accuracyHistory;
};

/**
 * Adaptive single/few-pass trainer over pre-encoded points.
 *
 * @param encoded Encoded training points (any encoder).
 * @param labels Class labels, same length.
 * @param dim Hypervector dimensionality.
 * @param num_classes Number of classes.
 */
OnlineTrainResult
onlineTrain(const std::vector<IntHv> &encoded,
            const std::vector<std::size_t> &labels, Dim dim,
            std::size_t num_classes,
            const OnlineTrainOptions &options = {});

} // namespace lookhd::hdc

#endif // LOOKHD_HDC_ONLINE_TRAINER_HPP
