#include "hdc/model.hpp"

#include "obs/obs.hpp"
#include "util/check.hpp"

#include "hdc/kernels.hpp"
#include "hdc/similarity.hpp"

namespace lookhd::hdc {

ClassModel::ClassModel(Dim dim, std::size_t classes)
    : dim_(dim), classes_(classes, IntHv(dim, 0))
{
    LOOKHD_CHECK(dim != 0 && classes != 0, "model shape must be nonzero");
}

void
ClassModel::accumulate(std::size_t c, const IntHv &encoded)
{
    LOOKHD_SPAN("hdc.train.accumulate", "train");
    addInto(classes_.at(c), encoded);
    normalized_ = false;
}

void
ClassModel::update(std::size_t correct, std::size_t wrong,
                   const IntHv &encoded)
{
    addInto(classes_.at(correct), encoded);
    subtractFrom(classes_.at(wrong), encoded);
    normalized_ = false;
}

void
ClassModel::normalize()
{
    norm_.clear();
    norm_.reserve(classes_.size());
    for (const IntHv &c : classes_)
        norm_.push_back(lookhd::hdc::normalized(c));
    normalized_ = true;
}

std::vector<double>
ClassModel::scores(const IntHv &query) const
{
    LOOKHD_SPAN("hdc.search", "search");
    LOOKHD_CHECK(normalized_, "model not normalized; call normalize()");
    std::vector<double> out(norm_.size());
    for (std::size_t c = 0; c < norm_.size(); ++c)
        out[c] = dot(query, norm_[c]);
    LOOKHD_QUALITY_MARGIN("hdc.search", out);
    return out;
}

std::vector<double>
ClassModel::scoresBatch(const IntHv *const *queries,
                        std::size_t numQueries) const
{
    LOOKHD_SPAN("hdc.search.batch", "search");
    LOOKHD_CHECK(normalized_, "model not normalized; call normalize()");
    std::vector<const std::int32_t *> qptrs(numQueries);
    for (std::size_t q = 0; q < numQueries; ++q) {
        LOOKHD_CHECK(queries[q]->size() == dim_,
                     "query dimensionality mismatch");
        qptrs[q] = queries[q]->data();
    }
    std::vector<const double *> rows(norm_.size());
    for (std::size_t c = 0; c < norm_.size(); ++c)
        rows[c] = norm_[c].data();
    std::vector<double> out(numQueries * norm_.size());
    kernels::similarityBatch(qptrs.data(), numQueries, rows.data(),
                             rows.size(), dim_, out.data());
    return out;
}

std::size_t
ClassModel::predict(const IntHv &query) const
{
    return argmax(scores(query));
}

std::vector<std::size_t>
ClassModel::predictBatch(const IntHv *const *queries,
                         std::size_t numQueries) const
{
    const std::vector<double> all = scoresBatch(queries, numQueries);
    const std::size_t k = norm_.size();
    std::vector<std::size_t> labels(numQueries);
    for (std::size_t q = 0; q < numQueries; ++q) {
        const double *row = all.data() + q * k;
        std::size_t best = 0;
        for (std::size_t c = 1; c < k; ++c) {
            if (row[c] > row[best])
                best = c;
        }
        labels[q] = best;
    }
    return labels;
}

std::size_t
ClassModel::sizeBytes(std::size_t bytes_per_element) const
{
    return classes_.size() * dim_ * bytes_per_element;
}

} // namespace lookhd::hdc
