#include "hdc/clustering.hpp"

#include <algorithm>

#include "util/check.hpp"

#include "hdc/similarity.hpp"
#include "util/rng.hpp"

namespace lookhd::hdc {

namespace {

/** Index of the centroid most similar to @p point. */
std::size_t
nearestCentroid(const IntHv &point,
                const std::vector<RealHv> &normalized_centroids)
{
    std::size_t best = 0;
    double best_score = -2.0;
    for (std::size_t c = 0; c < normalized_centroids.size(); ++c) {
        const double score = dot(point, normalized_centroids[c]);
        if (score > best_score) {
            best_score = score;
            best = c;
        }
    }
    return best;
}

} // namespace

ClusterResult
clusterEncoded(const std::vector<IntHv> &points, std::size_t k,
               const ClusterOptions &options)
{
    LOOKHD_CHECK(!points.empty(), "cannot cluster zero points");
    LOOKHD_CHECK(k != 0 && k <= points.size(), "cluster count out of range");
    const Dim d = points.front().size();
    for (const IntHv &p : points) {
        LOOKHD_CHECK(p.size() == d, "inconsistent dimensions");
    }

    ClusterResult result;
    result.assignments.assign(points.size(), k); // "unassigned"

    // Seed with k distinct points.
    util::Rng rng(options.seed);
    const auto seeds = rng.sampleIndices(points.size(), k);
    result.centroids.clear();
    for (std::size_t s : seeds)
        result.centroids.push_back(points[s]);

    // Normalized centroids for cosine ranking; query norms are
    // constant per point, so plain dots with unit centroids suffice.
    std::vector<RealHv> normalized_centroids(k);
    auto refresh = [&] {
        for (std::size_t c = 0; c < k; ++c)
            normalized_centroids[c] = normalized(result.centroids[c]);
    };
    refresh();

    for (std::size_t iter = 0; iter < options.maxIterations; ++iter) {
        ++result.iterations;
        // Assignment step.
        std::size_t changed = 0;
        for (std::size_t i = 0; i < points.size(); ++i) {
            const std::size_t c =
                nearestCentroid(points[i], normalized_centroids);
            changed += c != result.assignments[i];
            result.assignments[i] = c;
        }

        // Update step: re-bundle each cluster.
        std::vector<IntHv> sums(k, IntHv(d, 0));
        std::vector<std::size_t> sizes(k, 0);
        for (std::size_t i = 0; i < points.size(); ++i) {
            addInto(sums[result.assignments[i]], points[i]);
            ++sizes[result.assignments[i]];
        }
        for (std::size_t c = 0; c < k; ++c) {
            if (sizes[c] > 0) {
                result.centroids[c] = std::move(sums[c]);
                continue;
            }
            // Empty cluster: re-seed with the point least similar to
            // its own centroid (the worst-represented point).
            std::size_t worst = 0;
            double worst_score = 2.0;
            for (std::size_t i = 0; i < points.size(); ++i) {
                const double score =
                    dot(points[i],
                        normalized_centroids[result.assignments[i]]) /
                    std::max(norm(points[i]), 1e-12);
                if (score < worst_score) {
                    worst_score = score;
                    worst = i;
                }
            }
            result.centroids[c] = points[worst];
            result.assignments[worst] = c;
            ++changed;
        }
        refresh();

        const double changed_fraction =
            static_cast<double>(changed) /
            static_cast<double>(points.size());
        if (changed_fraction <= options.tolerance) {
            result.converged = true;
            break;
        }
    }

    double cohesion = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        cohesion += cosine(
            toReal(points[i]),
            normalized_centroids[result.assignments[i]]);
    }
    result.cohesion = cohesion / static_cast<double>(points.size());
    return result;
}

double
clusterPurity(const std::vector<std::size_t> &assignments,
              const std::vector<std::size_t> &labels,
              std::size_t num_clusters, std::size_t num_labels)
{
    LOOKHD_CHECK(assignments.size() == labels.size() && !assignments.empty(),
                 "assignment/label size mismatch");
    std::vector<std::size_t> counts(num_clusters * num_labels, 0);
    for (std::size_t i = 0; i < assignments.size(); ++i) {
        LOOKHD_CHECK(assignments[i] < num_clusters && labels[i] < num_labels,
                     "cluster or label index");
        ++counts[assignments[i] * num_labels + labels[i]];
    }
    std::size_t majority_sum = 0;
    for (std::size_t c = 0; c < num_clusters; ++c) {
        majority_sum += *std::max_element(
            counts.begin() +
                static_cast<std::ptrdiff_t>(c * num_labels),
            counts.begin() +
                static_cast<std::ptrdiff_t>((c + 1) * num_labels));
    }
    return static_cast<double>(majority_sum) /
           static_cast<double>(assignments.size());
}

} // namespace lookhd::hdc
