#include "hdc/encoder.hpp"

#include <stdexcept>

namespace lookhd::hdc {

BaselineEncoder::BaselineEncoder(
    std::shared_ptr<const LevelMemory> levels,
    std::shared_ptr<const quant::Quantizer> quantizer)
    : levels_(std::move(levels)), quantizer_(std::move(quantizer))
{
    if (!levels_ || !quantizer_)
        throw std::invalid_argument("encoder needs levels and quantizer");
    if (!quantizer_->fitted())
        throw std::invalid_argument("quantizer must be fitted");
    if (quantizer_->levels() != levels_->levels()) {
        throw std::invalid_argument(
            "quantizer levels do not match level memory");
    }
}

BaselineEncoder::BaselineEncoder(
    std::shared_ptr<const LevelMemory> levels,
    std::shared_ptr<const quant::QuantizerBank> bank)
    : levels_(std::move(levels)), bank_(std::move(bank))
{
    if (!levels_ || !bank_)
        throw std::invalid_argument("encoder needs levels and bank");
    if (!bank_->fitted())
        throw std::invalid_argument("quantizer bank must be fitted");
    if (bank_->levels() != levels_->levels()) {
        throw std::invalid_argument(
            "bank levels do not match level memory");
    }
}

const quant::Quantizer &
BaselineEncoder::quantizer() const
{
    if (!quantizer_)
        throw std::logic_error("encoder uses a per-feature bank");
    return *quantizer_;
}

IntHv
BaselineEncoder::encode(std::span<const double> features) const
{
    IntHv acc(dim(), 0);
    for (std::size_t i = 0; i < features.size(); ++i) {
        const std::size_t lvl = bank_
                                    ? bank_->level(i, features[i])
                                    : quantizer_->level(features[i]);
        addRotated(acc, levels_->at(lvl), i);
    }
    return acc;
}

IntHv
BaselineEncoder::encodeLevels(std::span<const std::size_t> levels) const
{
    IntHv acc(dim(), 0);
    for (std::size_t i = 0; i < levels.size(); ++i)
        addRotated(acc, levels_->at(levels[i]), i);
    return acc;
}

} // namespace lookhd::hdc
