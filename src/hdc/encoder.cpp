#include "hdc/encoder.hpp"

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace lookhd::hdc {

BaselineEncoder::BaselineEncoder(
    std::shared_ptr<const LevelMemory> levels,
    std::shared_ptr<const quant::Quantizer> quantizer)
    : levels_(std::move(levels)), quantizer_(std::move(quantizer))
{
    LOOKHD_CHECK(levels_ && quantizer_, "encoder needs levels and quantizer");
    LOOKHD_CHECK(quantizer_->fitted(), "quantizer must be fitted");
    LOOKHD_CHECK(quantizer_->levels() == levels_->levels(),
                 "quantizer levels do not match level memory");
}

BaselineEncoder::BaselineEncoder(
    std::shared_ptr<const LevelMemory> levels,
    std::shared_ptr<const quant::QuantizerBank> bank)
    : levels_(std::move(levels)), bank_(std::move(bank))
{
    LOOKHD_CHECK(levels_ && bank_, "encoder needs levels and bank");
    LOOKHD_CHECK(bank_->fitted(), "quantizer bank must be fitted");
    LOOKHD_CHECK(bank_->levels() == levels_->levels(),
                 "bank levels do not match level memory");
}

const quant::Quantizer &
BaselineEncoder::quantizer() const
{
    LOOKHD_CHECK(quantizer_, "encoder uses a per-feature bank");
    return *quantizer_;
}

IntHv
BaselineEncoder::encode(std::span<const double> features) const
{
    LOOKHD_SPAN("hdc.encode", "encode");
    LOOKHD_COUNT_ADD("hdc.encode.calls", 1);
    IntHv acc(dim(), 0);
    for (std::size_t i = 0; i < features.size(); ++i) {
        const std::size_t lvl = bank_
                                    ? bank_->level(i, features[i])
                                    : quantizer_->level(features[i]);
        addRotated(acc, levels_->at(lvl), i);
    }
    return acc;
}

IntHv
BaselineEncoder::encodeLevels(std::span<const std::size_t> levels) const
{
    LOOKHD_SPAN("hdc.encode", "encode");
    LOOKHD_COUNT_ADD("hdc.encode.calls", 1);
    IntHv acc(dim(), 0);
    for (std::size_t i = 0; i < levels.size(); ++i)
        addRotated(acc, levels_->at(levels[i]), i);
    return acc;
}

} // namespace lookhd::hdc
