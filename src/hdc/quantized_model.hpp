/**
 * @file
 * Bit-width-quantized class model (the QuanHD direction, paper
 * ref. [62]).
 *
 * Between the full int32 class hypervectors and the 1-bit binary
 * model lies a spectrum: quantize each class hypervector's elements
 * to b bits (uniform, symmetric around zero, per-class scale). Memory
 * shrinks 32/b-fold; accuracy degrades gracefully because the
 * distributed representation tolerates per-element noise. This model
 * quantifies that tradeoff and gives deployments a knob beyond
 * binary-or-nothing.
 */

#ifndef LOOKHD_HDC_QUANTIZED_MODEL_HPP
#define LOOKHD_HDC_QUANTIZED_MODEL_HPP

#include <cstdint>
#include <vector>

#include "hdc/model.hpp"

namespace lookhd::hdc {

/** Class model with b-bit quantized hypervector elements. */
class QuantizedModel
{
  public:
    /**
     * Quantize a trained model to @p bits per element.
     * @pre 1 <= bits <= 16.
     *
     * bits == 1 reproduces the sign-binarized model (with dot-product
     * scoring rather than Hamming, which ranks identically).
     */
    QuantizedModel(const ClassModel &model, std::size_t bits);

    Dim dim() const { return dim_; }
    std::size_t numClasses() const { return classes_.size(); }
    std::size_t bits() const { return bits_; }

    /** Quantized elements of one class (values in [-maxLevel, +maxLevel]). */
    const std::vector<std::int16_t> &classHv(std::size_t c) const
    {
        return classes_.at(c);
    }

    /** Per-class dequantization scale. */
    double scale(std::size_t c) const { return scales_.at(c); }

    /**
     * Normalized dot-product scores of a query (cosine ranking, as
     * the full model uses).
     */
    std::vector<double> scores(const IntHv &query) const;

    /** argmax of scores(). */
    std::size_t predict(const IntHv &query) const;

    /** Model size in bytes: bits per element, rounded up per class. */
    std::size_t sizeBytes() const;

  private:
    Dim dim_;
    std::size_t bits_;
    std::vector<std::vector<std::int16_t>> classes_;
    std::vector<double> scales_;
    /** Norm of each quantized class vector (for cosine ranking). */
    std::vector<double> norms_;
};

} // namespace lookhd::hdc

#endif // LOOKHD_HDC_QUANTIZED_MODEL_HPP
