#include "hdc/binary_model.hpp"

#include "hdc/similarity.hpp"

namespace lookhd::hdc {

BinaryModel::BinaryModel(const ClassModel &model)
    : dim_(model.dim())
{
    classes_.reserve(model.numClasses());
    for (std::size_t c = 0; c < model.numClasses(); ++c)
        classes_.emplace_back(sign(model.classHv(c)));
}

std::vector<double>
BinaryModel::scores(const IntHv &query) const
{
    const PackedHv bq{sign(query)};
    std::vector<double> out(classes_.size());
    for (std::size_t c = 0; c < classes_.size(); ++c)
        out[c] = hammingSimilarity(bq, classes_[c]);
    return out;
}

std::size_t
BinaryModel::predict(const IntHv &query) const
{
    return argmax(scores(query));
}

std::size_t
BinaryModel::sizeBytes() const
{
    return (classes_.size() * dim_ + 7) / 8;
}

} // namespace lookhd::hdc
