/**
 * @file
 * N-gram sequence encoder for symbolic data.
 *
 * The HDC literature the paper builds on (language identification,
 * text classification, genome matching - Sec. VII) encodes symbol
 * sequences by binding rotated symbol hypervectors over a sliding
 * n-gram window and bundling the windows:
 *
 *   H = sum_i  rho^{n-1} S(x_i) * rho^{n-2} S(x_{i+1}) * ...
 *              * S(x_{i+n-1})
 *
 * Binding makes each n-gram a quasi-orthogonal token; bundling turns
 * the sequence into a histogram of its n-grams in hyperspace. This
 * module rounds out the library so downstream users can run the
 * classic text/time-series HDC workloads alongside LookHD.
 */

#ifndef LOOKHD_HDC_NGRAM_ENCODER_HPP
#define LOOKHD_HDC_NGRAM_ENCODER_HPP

#include <memory>
#include <span>

#include "hdc/item_memory.hpp"

namespace lookhd::hdc {

/** Rotate-and-bind n-gram encoder over a symbol alphabet. */
class NgramEncoder
{
  public:
    /**
     * @param symbols One random hypervector per alphabet symbol.
     * @param n N-gram order. @pre n >= 1.
     */
    NgramEncoder(std::shared_ptr<const KeyMemory> symbols,
                 std::size_t n);

    Dim dim() const { return symbols_->dim(); }
    std::size_t order() const { return n_; }
    std::size_t alphabetSize() const { return symbols_->count(); }

    /**
     * Encode one n-gram starting at gram[0]. @pre gram.size() == n,
     * every symbol < alphabetSize().
     */
    BipolarHv
    encodeGram(std::span<const std::size_t> gram) const;

    /**
     * Encode a whole sequence: bundle of all its n-grams. Sequences
     * shorter than n yield the bundle of the single (shortened) gram.
     */
    IntHv encodeSequence(std::span<const std::size_t> sequence) const;

  private:
    std::shared_ptr<const KeyMemory> symbols_;
    std::size_t n_;
};

} // namespace lookhd::hdc

#endif // LOOKHD_HDC_NGRAM_ENCODER_HPP
