#include "hdc/similarity.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace lookhd::hdc {

double
cosine(const IntHv &a, const IntHv &b)
{
    const double na = norm(a);
    const double nb = norm(b);
    if (na == 0.0 || nb == 0.0)
        return 0.0;
    return static_cast<double>(dot(a, b)) / (na * nb);
}

double
cosine(const RealHv &a, const RealHv &b)
{
    const double na = norm(a);
    const double nb = norm(b);
    if (na == 0.0 || nb == 0.0)
        return 0.0;
    return dot(a, b) / (na * nb);
}

double
cosine(const IntHv &a, const RealHv &b)
{
    const double na = norm(a);
    const double nb = norm(b);
    if (na == 0.0 || nb == 0.0)
        return 0.0;
    return dot(a, b) / (na * nb);
}

double
cosine(const BipolarHv &a, const BipolarHv &b)
{
    LOOKHD_DCHECK(a.size() == b.size(), "dimensionality mismatch");
    if (a.empty())
        return 0.0;
    return static_cast<double>(dot(a, b)) /
           static_cast<double>(a.size());
}

double
hammingSimilarity(const BipolarHv &a, const BipolarHv &b)
{
    LOOKHD_DCHECK(a.size() == b.size(), "dimensionality mismatch");
    if (a.empty())
        return 0.0;
    std::size_t agree = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        agree += a[i] == b[i];
    return static_cast<double>(agree) / static_cast<double>(a.size());
}

std::size_t
argmax(const std::vector<double> &scores)
{
    LOOKHD_CHECK(!scores.empty(), "argmax of empty scores");
    return static_cast<std::size_t>(
        std::max_element(scores.begin(), scores.end()) - scores.begin());
}

} // namespace lookhd::hdc
