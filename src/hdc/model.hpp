/**
 * @file
 * Uncompressed HDC class model: one hypervector per class.
 */

#ifndef LOOKHD_HDC_MODEL_HPP
#define LOOKHD_HDC_MODEL_HPP

#include <cstddef>
#include <vector>

#include "hdc/hypervector.hpp"

namespace lookhd::hdc {

/**
 * Trained model of the conventional HDC classifier: k integer class
 * hypervectors C_1..C_k plus a cached normalized copy used for
 * inference (the pre-normalization of Sec. IV-A that turns cosine into
 * a dot product).
 */
class ClassModel
{
  public:
    /** All-zero model for @p classes classes of dimensionality @p dim. */
    ClassModel(Dim dim, std::size_t classes);

    Dim dim() const { return dim_; }
    std::size_t numClasses() const { return classes_.size(); }

    /** Mutable access to a class accumulator (training updates). */
    IntHv &
    classHv(std::size_t c)
    {
        normalized_ = false;
        return classes_.at(c);
    }
    const IntHv &classHv(std::size_t c) const { return classes_.at(c); }

    /** Add an encoded point into a class: C_c += H. */
    void accumulate(std::size_t c, const IntHv &encoded);

    /** Perceptron-style retraining update: C_correct += H, C_wrong -= H. */
    void update(std::size_t correct, std::size_t wrong,
                const IntHv &encoded);

    /**
     * Refresh the cached normalized class hypervectors. Must be called
     * after training updates and before predict()/scores().
     */
    void normalize();

    /** Whether normalize() is up to date with the accumulators. */
    bool normalized() const { return normalized_; }

    /** Dot-product scores against every normalized class hypervector. */
    std::vector<double> scores(const IntHv &query) const;

    /**
     * Scores for a batch of queries in one kernel pass:
     * out[q * numClasses() + c]. Bit-identical to calling scores() per
     * query (the batch kernel shares its accumulation order).
     */
    std::vector<double> scoresBatch(const IntHv *const *queries,
                                    std::size_t numQueries) const;

    /** Predicted class = argmax of scores(). */
    std::size_t predict(const IntHv &query) const;

    /** Argmax per row of scoresBatch(); same labels as predict(). */
    std::vector<std::size_t> predictBatch(const IntHv *const *queries,
                                          std::size_t numQueries) const;

    /**
     * Model size in bytes: k x D elements at @p bytes_per_element.
     * This is the quantity Fig. 15b's "model size reduction" compares.
     */
    std::size_t sizeBytes(std::size_t bytes_per_element = 4) const;

    const std::vector<RealHv> &normalizedClasses() const { return norm_; }

  private:
    Dim dim_;
    std::vector<IntHv> classes_;
    std::vector<RealHv> norm_;
    bool normalized_ = false;
};

} // namespace lookhd::hdc

#endif // LOOKHD_HDC_MODEL_HPP
