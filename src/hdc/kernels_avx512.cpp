/**
 * @file
 * AVX-512 kernel implementations (integer kernels only).
 *
 * Every function carries its own __attribute__((target(...))) so the
 * TU is built WITHOUT -mavx512* command-line flags: the compiler can
 * then never auto-vectorize ordinary code here into AVX-512
 * instructions that would fault on narrower hosts, and the binary
 * stays runnable anywhere (dispatch alone decides what executes).
 *
 * Scope: only the exact integer kernels (dotInt, dotIntI8, dotI8I8,
 * dotIntPackedWords, matchCountWords, scoresBatchI8) get 512-bit
 * bodies. The double kernels are copied verbatim from the AVX2 table
 * so there is exactly one float accumulation order per ISA family
 * and the 4-lane determinism contract stays single-sourced; as a
 * consequence the AVX-512 table exists only when the AVX2 table does
 * (true on every AVX-512 CPU).
 *
 * matchCountWords has two variants: a VPOPCNTDQ 512-bit popcount and
 * a hardware-popcnt word loop. The table picks at construction time
 * based on __builtin_cpu_supports("avx512vpopcntdq"); both are
 * integer-exact, so the choice is invisible in results - which is
 * also why the rest of the table is NOT gated on VPOPCNTDQ (common
 * Skylake-SP/Cascade Lake parts lack it but still benefit from the
 * 512-bit int8 path).
 */

#include "hdc/kernels.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(LOOKHD_NO_AVX512)

#include <algorithm>
#include <immintrin.h>

// GCC's avx512 headers build masked intrinsics on top of
// _mm512_undefined_epi32(), which trips -Wmaybe-uninitialized at
// every inline-expansion site when the headers are entered through
// per-function target attributes (GCC bug 105593). False positive;
// TU-local silence.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#define LOOKHD_AVX512_TARGET                                          \
    __attribute__((target("avx512f,avx512bw,avx512dq,avx512vl,popcnt")))
#define LOOKHD_AVX512_VPOPCNT_TARGET                                  \
    __attribute__((                                                   \
        target("avx512f,avx512bw,avx512dq,avx512vl,avx512vpopcntdq")))

namespace lookhd::hdc::kernels {

namespace {

LOOKHD_AVX512_TARGET std::int64_t
reduceLanes64(__m512i acc)
{
    return _mm512_reduce_add_epi64(acc);
}

LOOKHD_AVX512_TARGET std::int64_t
dotIntAvx512(const std::int32_t *a, const std::int32_t *b,
             std::size_t n)
{
    __m512i acc = _mm512_setzero_si512();
    std::size_t i = 0;
    const std::size_t n8 = n & ~std::size_t{7};
    for (; i < n8; i += 8) {
        // Widen to int64 lanes; vpmuldq multiplies each lane's low 32
        // bits as signed, giving the exact 64-bit product.
        const __m512i a64 = _mm512_cvtepi32_epi64(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i)));
        const __m512i b64 = _mm512_cvtepi32_epi64(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i)));
        acc = _mm512_add_epi64(acc, _mm512_mul_epi32(a64, b64));
    }
    std::int64_t sum = reduceLanes64(acc);
    for (; i < n; ++i)
        sum += static_cast<std::int64_t>(a[i]) * b[i];
    return sum;
}

LOOKHD_AVX512_TARGET std::int64_t
dotIntI8Avx512(const std::int32_t *a, const std::int8_t *signs,
               std::size_t n)
{
    __m512i acc = _mm512_setzero_si512();
    std::size_t i = 0;
    const std::size_t n8 = n & ~std::size_t{7};
    for (; i < n8; i += 8) {
        const __m512i a64 = _mm512_cvtepi32_epi64(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i)));
        const __m512i s64 = _mm512_cvtepi8_epi64(_mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(signs + i)));
        acc = _mm512_add_epi64(acc, _mm512_mul_epi32(a64, s64));
    }
    std::int64_t sum = reduceLanes64(acc);
    for (; i < n; ++i)
        sum += static_cast<std::int64_t>(a[i]) * signs[i];
    return sum;
}

LOOKHD_AVX512_TARGET std::int64_t
dotI8I8Avx512(const std::int8_t *a, const std::int8_t *b,
              std::size_t n)
{
    // 32 int8 per step: sign-extend to int16, vpmaddwd pair-sums into
    // sixteen int32 lanes (each at most 2 * 127 * 127 = 32258); the
    // accumulator is widened into the int64 total every kBlock steps,
    // far below the ~66570 steps a lane needs to reach INT32_MAX.
    constexpr std::size_t kBlock = 8192;
    std::int64_t sum = 0;
    std::size_t i = 0;
    const std::size_t n32 = n & ~std::size_t{31};
    while (i < n32) {
        const std::size_t stop =
            std::min(n32, i + kBlock * std::size_t{32});
        __m512i acc = _mm512_setzero_si512();
        for (; i < stop; i += 32) {
            const __m512i a16 =
                _mm512_cvtepi8_epi16(_mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(a + i)));
            const __m512i b16 =
                _mm512_cvtepi8_epi16(_mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(b + i)));
            acc = _mm512_add_epi32(acc, _mm512_madd_epi16(a16, b16));
        }
        sum += _mm512_reduce_add_epi32(acc);
    }
    for (; i < n; ++i)
        sum += static_cast<std::int64_t>(a[i]) * b[i];
    return sum;
}

LOOKHD_AVX512_TARGET std::int64_t
dotIntPackedWordsAvx512(const std::int32_t *q,
                        const std::uint64_t *words, std::size_t n)
{
    // Eight elements per step: the byte of packed sign bits becomes
    // the lane mask directly; lanes with a clear bit take the 64-bit
    // negation, so -INT32_MIN is exact like the scalar reference.
    __m512i acc = _mm512_setzero_si512();
    const __m512i zero = _mm512_setzero_si512();
    std::size_t i = 0;
    const std::size_t n8 = n & ~std::size_t{7};
    for (; i < n8; i += 8) {
        const __mmask8 set = static_cast<__mmask8>(
            words[i / 64] >> (i % 64));
        const __m512i q64 = _mm512_cvtepi32_epi64(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(q + i)));
        const __m512i neg = _mm512_sub_epi64(zero, q64);
        acc = _mm512_add_epi64(acc,
                               _mm512_mask_blend_epi64(set, neg, q64));
    }
    std::int64_t sum = reduceLanes64(acc);
    for (; i < n; ++i) {
        const bool positive = (words[i / 64] >> (i % 64)) & 1u;
        sum += positive ? q[i] : -static_cast<std::int64_t>(q[i]);
    }
    return sum;
}

LOOKHD_AVX512_TARGET std::size_t
matchCountWordsAvx512(const std::uint64_t *a, const std::uint64_t *b,
                      std::size_t words, std::size_t dim)
{
    if (words == 0)
        return 0;
    std::uint64_t matches = 0;
    for (std::size_t w = 0; w + 1 < words; ++w)
        matches += static_cast<std::uint64_t>(
            _mm_popcnt_u64(~(a[w] ^ b[w])));
    matches += static_cast<std::uint64_t>(_mm_popcnt_u64(
        ~(a[words - 1] ^ b[words - 1]) & tailMask64(dim)));
    return static_cast<std::size_t>(matches);
}

LOOKHD_AVX512_VPOPCNT_TARGET std::size_t
matchCountWordsVpopcnt(const std::uint64_t *a, const std::uint64_t *b,
                       std::size_t words, std::size_t dim)
{
    if (words == 0)
        return 0;
    const std::size_t body = words - 1;
    __m512i acc = _mm512_setzero_si512();
    std::size_t w = 0;
    const std::size_t w8 = body & ~std::size_t{7};
    for (; w < w8; w += 8) {
        const __m512i av = _mm512_loadu_si512(a + w);
        const __m512i bv = _mm512_loadu_si512(b + w);
        // XNOR via vpternlogq (0x99 = ~(A ^ B)), then per-lane
        // popcount.
        const __m512i xnor =
            _mm512_ternarylogic_epi64(av, bv, av, 0x99);
        acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(xnor));
    }
    std::uint64_t matches =
        static_cast<std::uint64_t>(_mm512_reduce_add_epi64(acc));
    for (; w < body; ++w)
        matches += static_cast<std::uint64_t>(
            _mm_popcnt_u64(~(a[w] ^ b[w])));
    matches += static_cast<std::uint64_t>(_mm_popcnt_u64(
        ~(a[words - 1] ^ b[words - 1]) & tailMask64(dim)));
    return static_cast<std::size_t>(matches);
}

LOOKHD_AVX512_TARGET void
scoresBatchI8Avx512(const std::int8_t *const *queries,
                    std::size_t numQueries,
                    const std::int8_t *const *rows,
                    std::size_t numRows, std::size_t n,
                    std::int64_t *out)
{
    for (std::size_t q = 0; q < numQueries; ++q)
        for (std::size_t r = 0; r < numRows; ++r)
            out[q * numRows + r] =
                dotI8I8Avx512(queries[q], rows[r], n);
}

bool
cpuSupported()
{
    return __builtin_cpu_supports("avx512f") != 0 &&
           __builtin_cpu_supports("avx512bw") != 0 &&
           __builtin_cpu_supports("avx512dq") != 0 &&
           __builtin_cpu_supports("avx512vl") != 0 &&
           __builtin_cpu_supports("popcnt") != 0;
}

} // namespace

const detail::KernelTable *
detail::avx512Table()
{
    static const detail::KernelTable *table = []()
        -> const detail::KernelTable * {
        const detail::KernelTable *avx2 = detail::avx2Table();
        if (avx2 == nullptr || !cpuSupported())
            return nullptr;
        static detail::KernelTable t = *avx2;
        t.impl = Impl::kAvx512;
        t.dotInt = dotIntAvx512;
        t.dotIntI8 = dotIntI8Avx512;
        t.dotI8I8 = dotI8I8Avx512;
        t.dotIntPackedWords = dotIntPackedWordsAvx512;
        t.matchCountWords =
            __builtin_cpu_supports("avx512vpopcntdq") != 0
                ? matchCountWordsVpopcnt
                : matchCountWordsAvx512;
        t.scoresBatchI8 = scoresBatchI8Avx512;
        return &t;
    }();
    return table;
}

} // namespace lookhd::hdc::kernels

#else // not x86-64 GCC/clang (or explicitly disabled)

namespace lookhd::hdc::kernels {

const detail::KernelTable *
detail::avx512Table()
{
    return nullptr;
}

} // namespace lookhd::hdc::kernels

#endif
