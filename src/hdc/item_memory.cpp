#include "hdc/item_memory.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace lookhd::hdc {

LevelMemory::LevelMemory(Dim dim, std::size_t levels, util::Rng &rng,
                         LevelGen strategy)
    : dim_(dim)
{
    LOOKHD_CHECK(levels >= 2, "level memory needs at least 2 levels");
    LOOKHD_CHECK(dim >= levels, "dimensionality below level count");

    hvs_.reserve(levels);
    hvs_.push_back(randomBipolar(dim, rng));

    if (strategy == LevelGen::kDistinctHalf) {
        // One global random order of dimensions; each step flips the
        // next D/(2(q-1)) of them, so flips never repeat and the total
        // flipped after q-1 steps is D/2.
        std::vector<std::size_t> order = rng.sampleIndices(dim, dim);
        const std::size_t per_step = dim / (2 * (levels - 1));
        std::size_t cursor = 0;
        for (std::size_t lvl = 1; lvl < levels; ++lvl) {
            BipolarHv next = hvs_.back();
            for (std::size_t s = 0; s < per_step && cursor < dim;
                 ++s, ++cursor) {
                auto &e = next[order[cursor]];
                e = static_cast<std::int8_t>(-e);
            }
            hvs_.push_back(std::move(next));
        }
    } else {
        // Paper-literal: re-randomize D/q random dimensions per step.
        const std::size_t per_step = std::max<std::size_t>(1, dim / levels);
        for (std::size_t lvl = 1; lvl < levels; ++lvl) {
            BipolarHv next = hvs_.back();
            const auto picks = rng.sampleIndices(dim, per_step);
            for (std::size_t idx : picks)
                next[idx] = static_cast<std::int8_t>(rng.nextSign());
            hvs_.push_back(std::move(next));
        }
    }
}

LevelMemory::LevelMemory(std::vector<BipolarHv> hvs)
    : dim_(hvs.empty() ? 0 : hvs.front().size()), hvs_(std::move(hvs))
{
    LOOKHD_CHECK(hvs_.size() >= 2,
                 "level memory needs at least 2 levels");
    for (const auto &hv : hvs_) {
        LOOKHD_CHECK(hv.size() == dim_,
                     "inconsistent level dimensions");
    }
}

KeyMemory::KeyMemory(Dim dim, std::size_t count, util::Rng &rng)
    : dim_(dim)
{
    hvs_.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        hvs_.push_back(randomBipolar(dim, rng));
}

KeyMemory::KeyMemory(std::vector<BipolarHv> hvs)
    : dim_(hvs.empty() ? 0 : hvs.front().size()), hvs_(std::move(hvs))
{
    for (const auto &hv : hvs_) {
        LOOKHD_CHECK(hv.size() == dim_,
                     "inconsistent key dimensions");
    }
}

} // namespace lookhd::hdc
