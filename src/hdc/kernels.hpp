/**
 * @file
 * Runtime-dispatched similarity/encoding kernels (scalar, AVX2,
 * AVX-512, NEON).
 *
 * Every hot inner loop of the classifier funnels through this one
 * table of kernels so there is exactly one implementation (per
 * instruction set) of each primitive to test, and so the batched and
 * single-sample paths share bit-identical arithmetic:
 *
 *  - dotInt / dotIntI8: exact int64 dot products over int32 rows;
 *  - dotI8I8 / scoresBatchI8: exact int32xint8 dot products over
 *    quantized int8 class rows (the quantized serving path);
 *  - dotIntPackedWords: exact signed dot of an int32 query against a
 *    sign-packed bit row (the binary-model cosine numerator);
 *  - dotIntReal / dotRealI8 / similarityBatch: double accumulations
 *    used by class scoring;
 *  - mulIntReal / addSignedI8: the element-wise product and the
 *    key-signed accumulate of the compressed model and the lookup
 *    encoder;
 *  - matchCountWords: the popcount word loop behind every packed
 *    Hamming similarity (deduplicated from bitpack.cpp).
 *
 * Dispatch: the best implementation the CPU supports is chosen once
 * at first use (AVX-512 > AVX2 > NEON > scalar, each gated on the
 * matching translation unit being compiled in and the CPU reporting
 * the feature). Tests pin an implementation with forceImpl().
 *
 * Determinism contract: integer kernels are exact, so every
 * implementation returns identical bits trivially. The double
 * kernels all follow one accumulation order - four independent
 * partial sums over lanes i % 4, reduced as (l0 + l1) + (l2 + l3),
 * then a sequential tail for n % 4 elements, with no FMA contraction
 * - which is precisely what a 4-wide AVX2 register computes. Scalar
 * and AVX2 therefore agree bit-for-bit, and batch results equal
 * single-query results by construction. (The AVX-512 table reuses
 * the AVX2 double kernels verbatim; its 512-bit code covers only the
 * exact integer kernels, so widening dispatch cannot perturb float
 * scores.)
 */

#ifndef LOOKHD_HDC_KERNELS_HPP
#define LOOKHD_HDC_KERNELS_HPP

#include <cstddef>
#include <cstdint>

namespace lookhd::hdc::kernels {

/** Available kernel implementations. */
enum class Impl
{
    kScalar = 0,
    kAvx2 = 1,
    kAvx512 = 2,
    kNeon = 3,
};

/** Human-readable name ("scalar", "avx2", "avx512", "neon"). */
const char *implName(Impl impl);

/** Whether @p impl is compiled in and runnable on this CPU. */
bool implAvailable(Impl impl);

/** The implementation dispatch currently resolves to. */
Impl activeImpl();

/**
 * Pin dispatch to @p impl (tests, benchmarks).
 * @throws std::invalid_argument when unavailable.
 * Not meant to race with in-flight kernel calls.
 */
void forceImpl(Impl impl);

/** Undo forceImpl(); dispatch returns to the best available. */
void clearForcedImpl();

/** Mask selecting the dim % 64 used bits of a final packed word. */
inline constexpr std::uint64_t
tailMask64(std::size_t dim)
{
    const std::size_t tail = dim % 64;
    return tail == 0 ? ~std::uint64_t{0}
                     : (std::uint64_t{1} << tail) - 1;
}

/** Exact sum of a[i] * b[i] in int64. */
std::int64_t dotInt(const std::int32_t *a, const std::int32_t *b,
                    std::size_t n);

/** Exact sum of a[i] * signs[i] (signs are +-1 bipolar bytes). */
std::int64_t dotIntI8(const std::int32_t *a, const std::int8_t *signs,
                      std::size_t n);

/** Exact sum of a[i] * b[i] over two int8 rows (quantized scoring). */
std::int64_t dotI8I8(const std::int8_t *a, const std::int8_t *b,
                     std::size_t n);

/**
 * Exact signed dot of an int32 query against a sign-packed row:
 * sum over i < n of (bit i of words set ? +q[i] : -q[i]). Bit i
 * lives in words[i / 64] >> (i % 64); bits at and above n are
 * ignored. The integer numerator behind every IntHv-vs-PackedHv
 * cosine (deduplicated from bitpack.cpp).
 */
std::int64_t dotIntPackedWords(const std::int32_t *q,
                               const std::uint64_t *words,
                               std::size_t n);

/** Sum of double(q[i]) * row[i], 4-lane accumulation contract. */
double dotIntReal(const std::int32_t *q, const double *row,
                  std::size_t n);

/**
 * Sum of values[i] * signs[i] (signs +-1), 4-lane contract. The
 * sign-resolved accumulation of compressed-model unbinding.
 */
double dotRealI8(const double *values, const std::int8_t *signs,
                 std::size_t n);

/** out[i] = double(a[i]) * b[i] (element-wise, exact per element). */
void mulIntReal(const std::int32_t *a, const double *b, double *out,
                std::size_t n);

/** acc[i] += row[i] * signs[i] (signs +-1); the encoder accumulate. */
void addSignedI8(std::int32_t *acc, const std::int32_t *row,
                 const std::int8_t *signs, std::size_t n);

/**
 * Agreeing-bit count (popcount of XNOR) over @p words packed words
 * holding @p dim valid bits; the tail word's unused bits are masked.
 */
std::size_t matchCountWords(const std::uint64_t *a,
                            const std::uint64_t *b, std::size_t words,
                            std::size_t dim);

/**
 * Score numQueries int32 query rows against numRows double class
 * rows in one pass: out[q * numRows + r] = dotIntReal(queries[q],
 * rows[r], n), bit-identical to the single-query kernel.
 */
void similarityBatch(const std::int32_t *const *queries,
                     std::size_t numQueries,
                     const double *const *rows, std::size_t numRows,
                     std::size_t n, double *out);

/**
 * Score numQueries int8 query rows against numRows int8 class rows
 * in one exact pass: out[q * numRows + r] = dotI8I8(queries[q],
 * rows[r], n). Bit-identical to the single-query kernel (integer
 * arithmetic; no rounding anywhere).
 */
void scoresBatchI8(const std::int8_t *const *queries,
                   std::size_t numQueries,
                   const std::int8_t *const *rows, std::size_t numRows,
                   std::size_t n, std::int64_t *out);

namespace detail {

/** One implementation's function table (internal; see kernels.cpp). */
struct KernelTable
{
    Impl impl;
    std::int64_t (*dotInt)(const std::int32_t *, const std::int32_t *,
                           std::size_t);
    std::int64_t (*dotIntI8)(const std::int32_t *,
                             const std::int8_t *, std::size_t);
    std::int64_t (*dotI8I8)(const std::int8_t *, const std::int8_t *,
                            std::size_t);
    std::int64_t (*dotIntPackedWords)(const std::int32_t *,
                                      const std::uint64_t *,
                                      std::size_t);
    double (*dotIntReal)(const std::int32_t *, const double *,
                         std::size_t);
    double (*dotRealI8)(const double *, const std::int8_t *,
                        std::size_t);
    void (*mulIntReal)(const std::int32_t *, const double *, double *,
                       std::size_t);
    void (*addSignedI8)(std::int32_t *, const std::int32_t *,
                        const std::int8_t *, std::size_t);
    std::size_t (*matchCountWords)(const std::uint64_t *,
                                   const std::uint64_t *, std::size_t,
                                   std::size_t);
    void (*similarityBatch)(const std::int32_t *const *, std::size_t,
                            const double *const *, std::size_t,
                            std::size_t, double *);
    void (*scoresBatchI8)(const std::int8_t *const *, std::size_t,
                          const std::int8_t *const *, std::size_t,
                          std::size_t, std::int64_t *);
};

/** The always-available scalar reference table. */
const KernelTable *scalarTable();

/** AVX2 table, or nullptr when not compiled in / not supported. */
const KernelTable *avx2Table();

/**
 * AVX-512 table, or nullptr when not compiled in / not supported.
 * Gated on avx512{f,bw,dq,vl}; within the table, matchCountWords
 * additionally upgrades itself to the VPOPCNTDQ variant when the CPU
 * has it (both variants are integer-exact, so the choice is
 * invisible to results). Double kernels are shared with the AVX2
 * table to keep one float accumulation order per ISA family.
 */
const KernelTable *avx512Table();

/** NEON table, or nullptr when not compiled in (non-aarch64). */
const KernelTable *neonTable();

} // namespace detail

} // namespace lookhd::hdc::kernels

#endif // LOOKHD_HDC_KERNELS_HPP
