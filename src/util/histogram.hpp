/**
 * @file
 * Fixed-bin histogram with ASCII rendering, used to reproduce the
 * distribution plots in the paper (Figs. 3 and 8).
 */

#ifndef LOOKHD_UTIL_HISTOGRAM_HPP
#define LOOKHD_UTIL_HISTOGRAM_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace lookhd::util {

/** Equal-width histogram over [lo, hi]. */
class Histogram
{
  public:
    /**
     * @param lo Lower edge of the first bin.
     * @param hi Upper edge of the last bin. @pre hi > lo.
     * @param bins Number of bins. @pre bins > 0.
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Add one observation; out-of-range values clamp to edge bins. */
    void add(double x);

    /** Add every value in the sample. */
    void addAll(const std::vector<double> &values);

    std::size_t bins() const { return counts_.size(); }
    std::size_t count(std::size_t bin) const { return counts_.at(bin); }
    std::size_t total() const { return total_; }

    /** Center of the given bin. */
    double binCenter(std::size_t bin) const;

    /** Fraction of observations in the given bin (0 if empty). */
    double fraction(std::size_t bin) const;

    /**
     * Render a horizontal-bar ASCII plot, one line per bin, bars scaled
     * so the fullest bin spans @p width characters.
     */
    std::string render(std::size_t width = 50) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

} // namespace lookhd::util

#endif // LOOKHD_UTIL_HISTOGRAM_HPP
