/**
 * @file
 * ASCII table and CSV emitters so every bench binary can print its
 * table/figure in the same layout the paper reports.
 */

#ifndef LOOKHD_UTIL_TABLE_HPP
#define LOOKHD_UTIL_TABLE_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace lookhd::util {

/**
 * Column-aligned text table.
 *
 * Usage:
 * @code
 *   Table t({"App", "Speedup", "Energy"});
 *   t.addRow({"SPEECH", "28.3x", "97.4x"});
 *   std::cout << t.render();
 * @endcode
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row. @pre cells.size() == number of headers. */
    void addRow(std::vector<std::string> cells);

    std::size_t rows() const { return rows_.size(); }
    std::size_t columns() const { return headers_.size(); }

    /** Render with box-drawing separators. */
    std::string render() const;

    /** Render as CSV (RFC-4180-style quoting for commas/quotes). */
    std::string renderCsv() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given number of decimals. */
std::string fmt(double value, int decimals = 2);

/** Format a ratio as e.g. "28.3x". */
std::string fmtRatio(double value, int decimals = 1);

/** Format a fraction as e.g. "94.1%". */
std::string fmtPercent(double fraction, int decimals = 1);

/** Format with SI suffix (k, M, G) for large magnitudes. */
std::string fmtSi(double value, int decimals = 2);

} // namespace lookhd::util

#endif // LOOKHD_UTIL_TABLE_HPP
