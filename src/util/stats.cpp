#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace lookhd::util {

Summary
summarize(const std::vector<double> &values)
{
    Summary s;
    if (values.empty())
        return s;
    RunningStats acc;
    for (double v : values)
        acc.push(v);
    s.count = acc.count();
    s.mean = acc.mean();
    s.stddev = acc.stddev();
    s.min = acc.min();
    s.max = acc.max();
    return s;
}

double
mean(const std::vector<double> &values)
{
    return summarize(values).mean;
}

double
stddev(const std::vector<double> &values)
{
    return summarize(values).stddev;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logsum = 0.0;
    for (double v : values) {
        LOOKHD_CHECK(v > 0.0, "geomean requires positive values");
        logsum += std::log(v);
    }
    return std::exp(logsum / static_cast<double>(values.size()));
}

double
quantile(std::vector<double> values, double p)
{
    LOOKHD_CHECK(!values.empty(), "quantile of empty sample");
    p = std::clamp(p, 0.0, 1.0);
    std::sort(values.begin(), values.end());
    const double pos = p * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double
pearson(const std::vector<double> &xs, const std::vector<double> &ys)
{
    LOOKHD_CHECK(xs.size() == ys.size(),
                 "pearson needs equal-length samples");
    LOOKHD_CHECK(xs.size() >= 2, "pearson needs at least two points");
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

void
RunningStats::push(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::variance() const
{
    return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

} // namespace lookhd::util
