/**
 * @file
 * Deterministic pseudo-random number generation for reproducible
 * experiments.
 *
 * All randomness in the library flows through Rng so that every
 * experiment in the paper reproduction is exactly repeatable from a
 * 64-bit seed. The generator is xoshiro256**, seeded through
 * splitmix64, which is the recommended seeding procedure for the
 * xoshiro family.
 */

#ifndef LOOKHD_UTIL_RNG_HPP
#define LOOKHD_UTIL_RNG_HPP

#include <array>
#include <cstdint>
#include <vector>

namespace lookhd::util {

/**
 * Deterministic random number generator (xoshiro256**).
 *
 * Satisfies the std::uniform_random_bit_generator concept so it can be
 * plugged into <random> distributions, but also offers the handful of
 * draws the library actually needs (uniform ints, doubles, Gaussians,
 * random sign vectors) directly, with stable semantics across
 * platforms.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Smallest value next() can return. */
    static constexpr result_type min() { return 0; }
    /** Largest value next() can return. */
    static constexpr result_type max() { return ~result_type{0}; }

    /** Next raw 64-bit output. */
    result_type operator()() { return next(); }

    /** Next raw 64-bit output. */
    result_type next();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double nextDouble(double lo, double hi);

    /** Standard normal draw (Box-Muller, deterministic pairing). */
    double nextGaussian();

    /** Normal draw with the given mean and standard deviation. */
    double nextGaussian(double mean, double stddev);

    /** Random sign: +1 or -1 with equal probability. */
    int nextSign();

    /** Vector of n random signs (+1/-1 as int8_t). */
    std::vector<std::int8_t> signVector(std::size_t n);

    /**
     * Sample k distinct indices from [0, n) without replacement
     * (partial Fisher-Yates). @pre k <= n.
     */
    std::vector<std::size_t> sampleIndices(std::size_t n, std::size_t k);

    /** Fisher-Yates shuffle of an index-addressable container. */
    template <typename Container>
    void
    shuffle(Container &c)
    {
        if (c.empty())
            return;
        for (std::size_t i = c.size() - 1; i > 0; --i) {
            const std::size_t j = nextBelow(i + 1);
            std::swap(c[i], c[j]);
        }
    }

    /**
     * Derive an independent child generator. Used to give each
     * submodule (item memory, dataset, ...) its own stream so adding
     * draws in one place does not perturb another.
     */
    Rng split();

  private:
    std::array<std::uint64_t, 4> state_;
    double gaussSpare_ = 0.0;
    bool hasGaussSpare_ = false;
};

} // namespace lookhd::util

#endif // LOOKHD_UTIL_RNG_HPP
