#include "util/timer.hpp"

namespace lookhd::util {

std::uint64_t
Timer::processNanoseconds()
{
    // Function-local static: the origin is fixed the first time any
    // code asks for a process timestamp, and being out of line there
    // is exactly one instance even with the header included from many
    // translation units.
    static const Timer process_start;
    return process_start.nanoseconds();
}

} // namespace lookhd::util
