#include "util/timer.hpp"

// Header-only; this translation unit exists so the build exposes the
// header through the library target and catches header breakage early.
