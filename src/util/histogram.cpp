#include "util/histogram.hpp"

#include <algorithm>
#include <cstdio>

#include "util/check.hpp"

namespace lookhd::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    LOOKHD_CHECK(hi > lo, "histogram needs hi > lo");
    LOOKHD_CHECK(bins > 0, "histogram needs at least one bin");
}

void
Histogram::add(double x)
{
    const double span = hi_ - lo_;
    auto bin = static_cast<long>((x - lo_) / span *
                                 static_cast<double>(counts_.size()));
    bin = std::clamp<long>(bin, 0, static_cast<long>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(bin)];
    ++total_;
}

void
Histogram::addAll(const std::vector<double> &values)
{
    for (double v : values)
        add(v);
}

double
Histogram::binCenter(std::size_t bin) const
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

double
Histogram::fraction(std::size_t bin) const
{
    if (total_ == 0)
        return 0.0;
    LOOKHD_CHECK_BOUNDS(bin, counts_.size());
    return static_cast<double>(counts_[bin]) /
           static_cast<double>(total_);
}

std::string
Histogram::render(std::size_t width) const
{
    const std::size_t peak =
        *std::max_element(counts_.begin(), counts_.end());
    std::string out;
    char line[160];
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        const std::size_t bar =
            peak ? counts_[b] * width / peak : 0;
        std::snprintf(line, sizeof(line), "%10.4f | %-6zu ",
                      binCenter(b), counts_[b]);
        out += line;
        out.append(bar, '#');
        out += '\n';
    }
    return out;
}

} // namespace lookhd::util
