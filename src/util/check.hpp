/**
 * @file
 * Contract-checking layer: precondition macros and overflow-checked
 * arithmetic.
 *
 * Every public API in the library states its preconditions with these
 * macros instead of ad-hoc `throw` statements, so violations carry a
 * uniform exception type (ContractViolation), the failing expression,
 * and the source location. The address-space arithmetic that LookHD's
 * lookup encoding depends on (q^s table sizes, row-byte products) goes
 * through the checked helpers, which refuse to wrap silently.
 *
 * Conventions:
 *
 *  - LOOKHD_CHECK: always-on precondition at a public API boundary.
 *    Violations are caller bugs; the check throws ContractViolation so
 *    callers and tests can react uniformly.
 *  - LOOKHD_DCHECK: internal invariant on a hot path; compiled out
 *    under NDEBUG exactly like assert(), but with a real message and
 *    a throw (not abort) in debug builds.
 *  - LOOKHD_CHECK_BOUNDS: index-in-range check that reports the index
 *    and the size.
 */

#ifndef LOOKHD_UTIL_CHECK_HPP
#define LOOKHD_UTIL_CHECK_HPP

#include <cstdint>
#include <stdexcept>
#include <string>

namespace lookhd::util {

/**
 * Thrown when a LOOKHD_CHECK / LOOKHD_DCHECK / LOOKHD_CHECK_BOUNDS
 * precondition fails or a checked arithmetic helper would overflow.
 *
 * Derives from std::logic_error: a contract violation is a programming
 * error on the caller's side, not an environmental failure.
 */
class ContractViolation : public std::logic_error
{
  public:
    ContractViolation(const char *expr, const char *file, int line,
                      const std::string &message);

    /** The stringified expression that failed (may be empty). */
    const std::string &expression() const noexcept { return expr_; }

    /** Source file of the failing check. */
    const std::string &file() const noexcept { return file_; }

    /** Source line of the failing check. */
    int line() const noexcept { return line_; }

  private:
    std::string expr_;
    std::string file_;
    int line_;
};

/** Throw a ContractViolation for a failed check (cold path). */
[[noreturn]] void raiseContractViolation(const char *expr,
                                         const char *file, int line,
                                         const std::string &message);

/** Throw a ContractViolation for an out-of-range index (cold path). */
[[noreturn]] void raiseBoundsViolation(const char *what,
                                       const char *file, int line,
                                       std::uint64_t index,
                                       std::uint64_t size);

/**
 * a * b, throwing ContractViolation instead of wrapping on 64-bit
 * overflow.
 */
std::uint64_t checkedMul(std::uint64_t a, std::uint64_t b);

/** a + b with the same overflow policy as checkedMul. */
std::uint64_t checkedAdd(std::uint64_t a, std::uint64_t b);

/**
 * base^exp by repeated checked multiplication: the q^s address-space
 * computation. 0^0 is defined as 1. @throws ContractViolation if the
 * result does not fit in 64 bits.
 */
std::uint64_t checkedMulPow(std::uint64_t base, std::uint64_t exp);

} // namespace lookhd::util

/**
 * Always-on precondition check: throws ContractViolation with the
 * failing expression, location and @p msg when @p cond is false.
 */
#define LOOKHD_CHECK(cond, msg)                                        \
    do {                                                               \
        if (!(cond)) [[unlikely]]                                      \
            ::lookhd::util::raiseContractViolation(#cond, __FILE__,    \
                                                   __LINE__, (msg));   \
    } while (false)

/**
 * Index bounds check: @p index must be < @p size. Reports both values
 * in the exception message.
 */
#define LOOKHD_CHECK_BOUNDS(index, size)                               \
    do {                                                               \
        const std::uint64_t lookhd_chk_idx_ =                          \
            static_cast<std::uint64_t>(index);                         \
        const std::uint64_t lookhd_chk_size_ =                         \
            static_cast<std::uint64_t>(size);                          \
        if (lookhd_chk_idx_ >= lookhd_chk_size_) [[unlikely]]          \
            ::lookhd::util::raiseBoundsViolation(                      \
                #index, __FILE__, __LINE__, lookhd_chk_idx_,           \
                lookhd_chk_size_);                                     \
    } while (false)

/**
 * Debug-only invariant check for hot paths: identical to LOOKHD_CHECK
 * in debug builds, compiled out (condition not evaluated) under
 * NDEBUG.
 */
#ifdef NDEBUG
#define LOOKHD_DCHECK(cond, msg)                                       \
    do {                                                               \
    } while (false)
#else
#define LOOKHD_DCHECK(cond, msg) LOOKHD_CHECK(cond, msg)
#endif

#endif // LOOKHD_UTIL_CHECK_HPP
