/**
 * @file
 * Clang Thread Safety Analysis macros and annotated lock primitives.
 *
 * This is the single home of raw std synchronization primitives in
 * the repo (enforced by tools/lint_annotations.py): every other file
 * takes locks through util::Mutex / util::MutexLock / util::CondVar
 * so that Clang's -Wthread-safety can prove, at compile time, that
 * each LOOKHD_GUARDED_BY field is only touched with its capability
 * held. The `tidy-tsa` CMake preset builds the whole tree with
 * -Werror=thread-safety -Werror=thread-safety-beta; off-Clang the
 * macros expand to nothing and the wrappers cost exactly one inline
 * forwarding call.
 *
 * Annotation cheat sheet (full reference:
 * https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
 *
 *   LOOKHD_GUARDED_BY(m)   field only touched with m held
 *   LOOKHD_REQUIRES(m)     function must be called with m held
 *   LOOKHD_ACQUIRE(m)      function acquires m and does not release
 *   LOOKHD_RELEASE(m)      function releases m
 *   LOOKHD_EXCLUDES(m)     function must NOT be called with m held
 *                          (self-deadlock guard on public APIs)
 *   LOOKHD_CAPABILITY(x)   class is a lockable capability named x
 *   LOOKHD_NO_THREAD_SAFETY_ANALYSIS
 *                          opt one function out; every use must carry
 *                          a rationale comment (the crash-signal path
 *                          in obs/eventlog.cpp is the canonical one)
 *
 * House rules for provable lock flows (see CONTRIBUTING.md):
 * prefer block-scoped MutexLock over manual lock()/unlock(); never
 * conditionally release; hoist work out of critical sections instead
 * of passing guarded references around; replace predicate-lambda
 * condition waits with explicit `while (!pred) cv.wait(m);` loops so
 * the analysis sees the capability across the loop.
 */

#ifndef LOOKHD_UTIL_THREAD_ANNOTATIONS_HPP
#define LOOKHD_UTIL_THREAD_ANNOTATIONS_HPP

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define LOOKHD_THREAD_ANNOTATION__(x) __attribute__((x))
#endif
#endif
#ifndef LOOKHD_THREAD_ANNOTATION__
#define LOOKHD_THREAD_ANNOTATION__(x) // no-op off Clang
#endif

#define LOOKHD_CAPABILITY(x) LOOKHD_THREAD_ANNOTATION__(capability(x))
#define LOOKHD_SCOPED_CAPABILITY \
    LOOKHD_THREAD_ANNOTATION__(scoped_lockable)
#define LOOKHD_GUARDED_BY(x) LOOKHD_THREAD_ANNOTATION__(guarded_by(x))
#define LOOKHD_PT_GUARDED_BY(x) \
    LOOKHD_THREAD_ANNOTATION__(pt_guarded_by(x))
#define LOOKHD_ACQUIRED_BEFORE(...) \
    LOOKHD_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define LOOKHD_ACQUIRED_AFTER(...) \
    LOOKHD_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))
#define LOOKHD_REQUIRES(...) \
    LOOKHD_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define LOOKHD_ACQUIRE(...) \
    LOOKHD_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define LOOKHD_RELEASE(...) \
    LOOKHD_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define LOOKHD_TRY_ACQUIRE(...) \
    LOOKHD_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define LOOKHD_EXCLUDES(...) \
    LOOKHD_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#define LOOKHD_ASSERT_CAPABILITY(x) \
    LOOKHD_THREAD_ANNOTATION__(assert_capability(x))
#define LOOKHD_RETURN_CAPABILITY(x) \
    LOOKHD_THREAD_ANNOTATION__(lock_returned(x))
#define LOOKHD_NO_THREAD_SAFETY_ANALYSIS \
    LOOKHD_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace lookhd::util {

class CondVar;

/**
 * Annotated exclusive mutex over std::mutex. Same cost, same
 * semantics; the capability annotation is the entire point. Prefer
 * the RAII MutexLock over calling lock()/unlock() directly.
 */
class LOOKHD_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() LOOKHD_ACQUIRE() { m_.lock(); }
    void unlock() LOOKHD_RELEASE() { m_.unlock(); }

    /** @return true iff the lock was acquired. */
    bool tryLock() LOOKHD_TRY_ACQUIRE(true) { return m_.try_lock(); }

  private:
    friend class CondVar;
    std::mutex m_;
};

/**
 * Block-scoped lock of a util::Mutex; the only idiomatic way to hold
 * one. Equivalent to std::lock_guard, plus the scoped-capability
 * annotation that lets the analysis track the critical section.
 */
class LOOKHD_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) LOOKHD_ACQUIRE(mutex)
        : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~MutexLock() LOOKHD_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mutex_;
};

/**
 * Condition variable paired with util::Mutex. All waits REQUIRE the
 * mutex held (take a MutexLock first); the internal release/reacquire
 * is invisible to the analysis, exactly like pthread_cond_wait under
 * the POSIX capability model.
 *
 * Deliberately predicate-free: write the condition loop at the call
 * site (`while (!ready_) cv_.wait(mutex_);`) so the analysis sees
 * which guarded fields the predicate reads. Timed waits return
 * std::cv_status like the std API.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Atomically release @p mutex, sleep, reacquire before return. */
    void
    wait(Mutex &mutex) LOOKHD_REQUIRES(mutex)
    {
        // Adopt the already-held native mutex for the wait protocol,
        // then release() so the unique_lock destructor leaves it
        // held, matching the REQUIRES contract.
        std::unique_lock<std::mutex> native(mutex.m_,
                                            std::adopt_lock);
        cv_.wait(native);
        native.release();
    }

    template <class Rep, class Period>
    std::cv_status
    waitFor(Mutex &mutex,
            const std::chrono::duration<Rep, Period> &dur)
        LOOKHD_REQUIRES(mutex)
    {
        std::unique_lock<std::mutex> native(mutex.m_,
                                            std::adopt_lock);
        const std::cv_status status = cv_.wait_for(native, dur);
        native.release();
        return status;
    }

    template <class Clock, class Duration>
    std::cv_status
    waitUntil(Mutex &mutex,
              const std::chrono::time_point<Clock, Duration> &deadline)
        LOOKHD_REQUIRES(mutex)
    {
        std::unique_lock<std::mutex> native(mutex.m_,
                                            std::adopt_lock);
        const std::cv_status status =
            cv_.wait_until(native, deadline);
        native.release();
        return status;
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace lookhd::util

#endif // LOOKHD_UTIL_THREAD_ANNOTATIONS_HPP
