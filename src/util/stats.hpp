/**
 * @file
 * Small descriptive-statistics helpers used by experiments and tests.
 */

#ifndef LOOKHD_UTIL_STATS_HPP
#define LOOKHD_UTIL_STATS_HPP

#include <cstddef>
#include <vector>

namespace lookhd::util {

/** Summary statistics of a sample. */
struct Summary
{
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0; ///< Population standard deviation.
    double min = 0.0;
    double max = 0.0;
};

/** Compute summary statistics of a sample; empty input gives zeros. */
Summary summarize(const std::vector<double> &values);

/** Arithmetic mean; 0 for empty input. */
double mean(const std::vector<double> &values);

/** Population standard deviation; 0 for fewer than two values. */
double stddev(const std::vector<double> &values);

/**
 * Geometric mean; the paper's "on average N x" speedups aggregate
 * per-application ratios this way. @pre all values > 0.
 */
double geomean(const std::vector<double> &values);

/**
 * Empirical quantile with linear interpolation, p in [0, 1].
 * @pre values non-empty.
 */
double quantile(std::vector<double> values, double p);

/** Pearson correlation of two equal-length samples. */
double pearson(const std::vector<double> &xs, const std::vector<double> &ys);

/** Incremental mean/variance accumulator (Welford). */
class RunningStats
{
  public:
    /** Add one observation. */
    void push(double x);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Population variance. */
    double variance() const;
    double stddev() const;
    double min() const { return min_; }
    double max() const { return max_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace lookhd::util

#endif // LOOKHD_UTIL_STATS_HPP
