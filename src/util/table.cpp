#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/check.hpp"

namespace lookhd::util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    LOOKHD_CHECK(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    LOOKHD_CHECK(cells.size() == headers_.size(),
                 "row width does not match header");
    rows_.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto renderRow = [&](const std::vector<std::string> &cells) {
        std::string line = "|";
        for (std::size_t c = 0; c < cells.size(); ++c) {
            line += ' ';
            line += cells[c];
            line.append(widths[c] - cells[c].size(), ' ');
            line += " |";
        }
        line += '\n';
        return line;
    };

    std::string rule = "+";
    for (std::size_t w : widths) {
        rule.append(w + 2, '-');
        rule += '+';
    }
    rule += '\n';

    std::string out = rule + renderRow(headers_) + rule;
    for (const auto &row : rows_)
        out += renderRow(row);
    out += rule;
    return out;
}

std::string
Table::renderCsv() const
{
    auto quote = [](const std::string &cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string q = "\"";
        for (char ch : cell) {
            if (ch == '"')
                q += '"';
            q += ch;
        }
        q += '"';
        return q;
    };
    auto renderRow = [&](const std::vector<std::string> &cells) {
        std::string line;
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                line += ',';
            line += quote(cells[c]);
        }
        line += '\n';
        return line;
    };
    std::string out = renderRow(headers_);
    for (const auto &row : rows_)
        out += renderRow(row);
    return out;
}

std::string
fmt(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
fmtRatio(double value, int decimals)
{
    return fmt(value, decimals) + "x";
}

std::string
fmtPercent(double fraction, int decimals)
{
    return fmt(fraction * 100.0, decimals) + "%";
}

std::string
fmtSi(double value, int decimals)
{
    const double mag = value < 0 ? -value : value;
    if (mag >= 1e9)
        return fmt(value / 1e9, decimals) + "G";
    if (mag >= 1e6)
        return fmt(value / 1e6, decimals) + "M";
    if (mag >= 1e3)
        return fmt(value / 1e3, decimals) + "k";
    return fmt(value, decimals);
}

} // namespace lookhd::util
