#include "util/rng.hpp"

#include <cmath>

namespace lookhd::util {

namespace {

/** splitmix64 step, used to expand a 64-bit seed into generator state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    // 53 high bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::nextDouble(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

double
Rng::nextGaussian()
{
    if (hasGaussSpare_) {
        hasGaussSpare_ = false;
        return gaussSpare_;
    }
    double u, v, s;
    do {
        u = nextDouble(-1.0, 1.0);
        v = nextDouble(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    gaussSpare_ = v * factor;
    hasGaussSpare_ = true;
    return u * factor;
}

double
Rng::nextGaussian(double mean, double stddev)
{
    return mean + stddev * nextGaussian();
}

int
Rng::nextSign()
{
    return (next() >> 63) ? 1 : -1;
}

std::vector<std::int8_t>
Rng::signVector(std::size_t n)
{
    std::vector<std::int8_t> out(n);
    std::size_t i = 0;
    while (i + 64 <= n) {
        std::uint64_t bits = next();
        for (int b = 0; b < 64; ++b, ++i) {
            out[i] = (bits & 1) ? std::int8_t{1} : std::int8_t{-1};
            bits >>= 1;
        }
    }
    if (i < n) {
        std::uint64_t bits = next();
        for (; i < n; ++i) {
            out[i] = (bits & 1) ? std::int8_t{1} : std::int8_t{-1};
            bits >>= 1;
        }
    }
    return out;
}

std::vector<std::size_t>
Rng::sampleIndices(std::size_t n, std::size_t k)
{
    std::vector<std::size_t> pool(n);
    for (std::size_t i = 0; i < n; ++i)
        pool[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
        const std::size_t j = i + nextBelow(n - i);
        std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
}

Rng
Rng::split()
{
    // Mix two outputs into a fresh seed so the child stream is
    // decorrelated from the parent's continuation.
    const std::uint64_t a = next();
    const std::uint64_t b = next();
    return Rng(a ^ rotl(b, 29) ^ 0xd1b54a32d192ed03ULL);
}

} // namespace lookhd::util
