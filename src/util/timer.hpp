/**
 * @file
 * Wall-clock timing helper for the CPU-side measurements.
 */

#ifndef LOOKHD_UTIL_TIMER_HPP
#define LOOKHD_UTIL_TIMER_HPP

#include <chrono>
#include <cstdint>

namespace lookhd::util {

/** Monotonic stopwatch. Starts running on construction. */
class Timer
{
  public:
    Timer() { reset(); }

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Elapsed seconds since construction or last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_)
            .count();
    }

    /** Elapsed microseconds. */
    double microseconds() const { return seconds() * 1e6; }

    /** Elapsed whole nanoseconds since construction or reset(). */
    std::uint64_t
    nanoseconds() const
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - start_)
                .count());
    }

    /**
     * Monotonic nanoseconds since a process-wide origin (the first
     * call to this function). All obs::TraceSpan timestamps share
     * this origin so spans from different translation units and
     * threads line up on one timeline; defined out of line in
     * timer.cpp so there is exactly one origin per process.
     */
    static std::uint64_t processNanoseconds();

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace lookhd::util

#endif // LOOKHD_UTIL_TIMER_HPP
