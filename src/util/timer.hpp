/**
 * @file
 * Wall-clock timing helper for the CPU-side measurements.
 */

#ifndef LOOKHD_UTIL_TIMER_HPP
#define LOOKHD_UTIL_TIMER_HPP

#include <chrono>

namespace lookhd::util {

/** Monotonic stopwatch. Starts running on construction. */
class Timer
{
  public:
    Timer() { reset(); }

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Elapsed seconds since construction or last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_)
            .count();
    }

    /** Elapsed microseconds. */
    double microseconds() const { return seconds() * 1e6; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace lookhd::util

#endif // LOOKHD_UTIL_TIMER_HPP
