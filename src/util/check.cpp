#include "util/check.hpp"

namespace lookhd::util {

namespace {

std::string
formatViolation(const char *expr, const char *file, int line,
                const std::string &message)
{
    std::string out = "contract violation: ";
    out += message;
    if (expr != nullptr && expr[0] != '\0') {
        out += " [failed: ";
        out += expr;
        out += "]";
    }
    out += " at ";
    out += file;
    out += ":";
    out += std::to_string(line);
    return out;
}

} // namespace

ContractViolation::ContractViolation(const char *expr, const char *file,
                                     int line,
                                     const std::string &message)
    : std::logic_error(formatViolation(expr, file, line, message)),
      expr_(expr), file_(file), line_(line)
{
}

void
raiseContractViolation(const char *expr, const char *file, int line,
                       const std::string &message)
{
    throw ContractViolation(expr, file, line, message);
}

void
raiseBoundsViolation(const char *what, const char *file, int line,
                     std::uint64_t index, std::uint64_t size)
{
    std::string msg = "index ";
    msg += what;
    msg += " = ";
    msg += std::to_string(index);
    msg += " out of range [0, ";
    msg += std::to_string(size);
    msg += ")";
    throw ContractViolation("", file, line, msg);
}

std::uint64_t
checkedMul(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t result = 0;
    if (__builtin_mul_overflow(a, b, &result)) {
        throw ContractViolation(
            "", __FILE__, __LINE__,
            "multiplication " + std::to_string(a) + " * " +
                std::to_string(b) + " overflows 64 bits");
    }
    return result;
}

std::uint64_t
checkedAdd(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t result = 0;
    if (__builtin_add_overflow(a, b, &result)) {
        throw ContractViolation(
            "", __FILE__, __LINE__,
            "addition " + std::to_string(a) + " + " +
                std::to_string(b) + " overflows 64 bits");
    }
    return result;
}

std::uint64_t
checkedMulPow(std::uint64_t base, std::uint64_t exp)
{
    std::uint64_t result = 1;
    for (std::uint64_t i = 0; i < exp; ++i) {
        if (__builtin_mul_overflow(result, base, &result)) {
            throw ContractViolation(
                "", __FILE__, __LINE__,
                std::to_string(base) + "^" + std::to_string(exp) +
                    " overflows the 64-bit address space");
        }
    }
    return result;
}

} // namespace lookhd::util
