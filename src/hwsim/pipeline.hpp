/**
 * @file
 * Generic pipelined-datapath timing: stages with an initiation
 * interval and a latency, streaming a number of items.
 *
 * The FPGA designs of Sec. V are linear pipelines (quantize ->
 * count, or encode -> search). For a stream of N items through
 * stages with initiation intervals II_s and latencies L_s, the total
 * time is the pipeline fill (sum of latencies for the first item)
 * plus (N - 1) times the bottleneck initiation interval. Each
 * stage's busy time is N * II_s, which yields per-stage utilization -
 * the hardware analogue of the Fig. 2 breakdown.
 */

#ifndef LOOKHD_HWSIM_PIPELINE_HPP
#define LOOKHD_HWSIM_PIPELINE_HPP

#include <string>
#include <vector>

namespace lookhd::hwsim {

/** One pipeline stage. */
struct Stage
{
    std::string name;
    /** Cycles between consecutive items entering this stage. */
    double initiationInterval = 1.0;
    /** Cycles from an item entering to leaving the stage. */
    double latency = 1.0;
};

/** Timing of one stage within a finished run. */
struct StageTiming
{
    std::string name;
    double busyCycles = 0.0;
    /** busyCycles / total pipeline cycles, in [0, 1]. */
    double utilization = 0.0;
    /** Whether this stage sets the pipeline's throughput. */
    bool bottleneck = false;
};

/** Result of streaming items through a pipeline. */
struct PipelineTiming
{
    double totalCycles = 0.0;
    std::vector<StageTiming> stages;

    /** The bottleneck stage's name ("" if empty pipeline). */
    std::string bottleneckName() const;
};

/**
 * Time @p items through @p stages. @pre items >= 1 and every stage
 * has positive initiation interval and latency >= interval is not
 * required (latency may exceed the interval for deep stages).
 */
PipelineTiming streamThrough(const std::vector<Stage> &stages,
                             double items);

} // namespace lookhd::hwsim

#endif // LOOKHD_HWSIM_PIPELINE_HPP
