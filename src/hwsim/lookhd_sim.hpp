/**
 * @file
 * Cycle-approximate simulation of the LookHD and baseline FPGA
 * designs (paper Figs. 10-11), executing *real* workloads.
 *
 * Where hw::FpgaModel charges closed-form operation counts (with the
 * expected counter occupancy), the simulator walks the actual
 * dataset: it runs the real counter-training pass, measures the true
 * number of distinct chunk patterns per class and the true union of
 * table rows touched, and then times each hardware phase as a
 * pipeline of stages with resource-derived initiation intervals. The
 * two estimators share every datapath constant (hw/datapath.hpp), so
 * their disagreement isolates exactly the data-dependent effects -
 * tests pin the ratio between them.
 */

#ifndef LOOKHD_HWSIM_LOOKHD_SIM_HPP
#define LOOKHD_HWSIM_LOOKHD_SIM_HPP

#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "hw/datapath.hpp"
#include "hw/resources.hpp"
#include "hwsim/pipeline.hpp"
#include "lookhd/counter_trainer.hpp"
#include "lookhd/lookup_encoder.hpp"

namespace lookhd::hwsim {

/** Outcome of simulating one hardware task. */
struct SimReport
{
    double totalCycles = 0.0;
    double seconds = 0.0;
    /** Phase/stage breakdown, in execution order. */
    std::vector<StageTiming> stages;
    /** Name of the throughput-limiting stage. */
    std::string bottleneck;
};

/** Simulator for the designs of Sec. V on one device. */
class FpgaSimulator
{
  public:
    explicit FpgaSimulator(hw::FpgaDevice device = hw::kintex7Kc705(),
                           hw::DatapathParams datapath = {});

    const hw::FpgaDevice &device() const { return device_; }

    /**
     * LookHD training (Fig. 10): streams the dataset through the
     * quantize/count pipeline, then times the weighted accumulation
     * and chunk aggregation using the dataset's *measured* counter
     * occupancy.
     */
    SimReport lookhdTrain(const LookupEncoder &encoder,
                          const data::Dataset &train) const;

    /**
     * LookHD inference (Fig. 11): encoding and compressed search
     * pipelined over @p queries data points.
     */
    SimReport lookhdInfer(const LookupEncoder &encoder,
                          std::size_t num_classes,
                          std::size_t model_groups,
                          std::size_t queries) const;

    /** Baseline HDC training: full-vector encode + class accumulate. */
    SimReport baselineTrain(std::size_t n, std::size_t q,
                            hdc::Dim dim,
                            std::size_t samples) const;

    /** Baseline inference: encode pipelined with the k-class search. */
    SimReport baselineInfer(std::size_t n, std::size_t q, hdc::Dim dim,
                            std::size_t num_classes,
                            std::size_t queries) const;

    /**
     * One LookHD retraining epoch (Sec. V-C): the inference pipeline
     * over every training point plus the compressed-domain update of
     * the mispredicted ones.
     */
    SimReport lookhdRetrainEpoch(const LookupEncoder &encoder,
                                 std::size_t num_classes,
                                 std::size_t model_groups,
                                 std::size_t samples,
                                 std::size_t updates) const;

  private:
    double lutThroughput() const;
    double secondsOf(double cycles) const;
    SimReport fromTiming(const PipelineTiming &timing) const;

    hw::FpgaDevice device_;
    hw::DatapathParams datapath_;
};

} // namespace lookhd::hwsim

#endif // LOOKHD_HWSIM_LOOKHD_SIM_HPP
