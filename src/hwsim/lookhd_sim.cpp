#include "hwsim/lookhd_sim.hpp"

#include <algorithm>
#include <unordered_set>

namespace lookhd::hwsim {

FpgaSimulator::FpgaSimulator(hw::FpgaDevice device,
                             hw::DatapathParams datapath)
    : device_(std::move(device)), datapath_(datapath)
{
}

double
FpgaSimulator::lutThroughput() const
{
    return datapath_.lutOpsPerCycle(device_.luts);
}

double
FpgaSimulator::secondsOf(double cycles) const
{
    return cycles * device_.clockNs * 1e-9;
}

SimReport
FpgaSimulator::fromTiming(const PipelineTiming &timing) const
{
    SimReport report;
    report.totalCycles = timing.totalCycles;
    report.seconds = secondsOf(timing.totalCycles);
    report.stages = timing.stages;
    report.bottleneck = timing.bottleneckName();
    return report;
}

SimReport
FpgaSimulator::lookhdTrain(const LookupEncoder &encoder,
                           const data::Dataset &train) const
{
    const double n = static_cast<double>(train.numFeatures());
    const double q = static_cast<double>(encoder.quantLevels());
    const double d = static_cast<double>(encoder.dim());
    const double m =
        static_cast<double>(encoder.chunks().numChunks());
    const double bram_bw = hw::bramBandwidth(device_);

    // --- Streaming phase: run the real counting pass to obtain the
    // data-dependent counter occupancy, then time the pipeline.
    CounterTrainer trainer(encoder);
    const CounterBank bank = trainer.countDataset(train);

    Stage quantize{"quantize",
                   std::max(1.0, n * q * datapath_.lutOpsPerCompare /
                                     lutThroughput()),
                   0.0};
    quantize.latency = quantize.initiationInterval + 2.0;
    Stage count{"counter-update",
                std::max(1.0, m * 4.0 / bram_bw), 3.0};
    const PipelineTiming streaming = streamThrough(
        {quantize, count}, static_cast<double>(train.size()));

    // --- Finalization: measured distinct rows per (class, chunk) for
    // the MAC count; measured union of rows per shared table for the
    // memory traffic (rows are read once and broadcast, Sec. V-A).
    double active_rows = 0.0;
    std::unordered_set<Address> full_union, tail_union;
    const std::size_t chunks = encoder.chunks().numChunks();
    const bool has_tail =
        chunks > 1 && !encoder.chunks().uniform();
    for (std::size_t c = 0; c < bank.numClasses(); ++c) {
        for (std::size_t ch = 0; ch < chunks; ++ch) {
            auto &dest = (has_tail && ch == chunks - 1) ? tail_union
                                                        : full_union;
            bank.at(c, ch).forEach(
                [&](Address addr, std::uint32_t) {
                    dest.insert(addr);
                });
            active_rows +=
                static_cast<double>(bank.at(c, ch).distinct());
        }
    }

    // Bits per pre-stored element: values span [-s, s] for a chunk of
    // s features (the model uses the same rule).
    const std::size_t value_count =
        encoder.tableFor(0).chunkLen() * 2 + 1;
    std::size_t elem_bits = 1;
    while ((std::size_t{1} << elem_bits) < value_count)
        ++elem_bits;

    const double table_read_bytes =
        (static_cast<double>(full_union.size()) +
         static_cast<double>(tail_union.size())) *
        d * static_cast<double>(elem_bits) / 8.0;
    const double table_total_bytes =
        static_cast<double>(encoder.tableFor(0).addressSpaceSize()) *
        d * static_cast<double>(elem_bits) / 8.0;
    const double mem_bw =
        table_total_bytes <= static_cast<double>(device_.bramBytes())
            ? bram_bw
            : datapath_.dramBytesPerCycle;

    const double mac_ops =
        active_rows * d * datapath_.lutOpsPerNarrowMac;
    const double accum_cycles =
        std::max(mac_ops / lutThroughput(), table_read_bytes / mem_bw);

    const double agg_ops = static_cast<double>(bank.numClasses()) * m *
                           d * 4.0;
    const double agg_cycles = agg_ops / lutThroughput();

    // --- Compose the report.
    SimReport report;
    report.totalCycles =
        streaming.totalCycles + accum_cycles + agg_cycles;
    report.seconds = secondsOf(report.totalCycles);
    report.stages = streaming.stages;
    report.stages.push_back(
        {"weighted-accumulation", accum_cycles, 0.0, false});
    report.stages.push_back(
        {"chunk-aggregation", agg_cycles, 0.0, false});
    double max_busy = 0.0;
    for (auto &stage : report.stages) {
        stage.utilization =
            std::min(1.0, stage.busyCycles / report.totalCycles);
        stage.bottleneck = false;
        if (stage.busyCycles > max_busy) {
            max_busy = stage.busyCycles;
            report.bottleneck = stage.name;
        }
    }
    for (auto &stage : report.stages)
        stage.bottleneck = stage.name == report.bottleneck;
    return report;
}

SimReport
FpgaSimulator::lookhdInfer(const LookupEncoder &encoder,
                           std::size_t num_classes,
                           std::size_t model_groups,
                           std::size_t queries) const
{
    const double n =
        static_cast<double>(encoder.chunks().numFeatures());
    const double q = static_cast<double>(encoder.quantLevels());
    const double d = static_cast<double>(encoder.dim());
    const double m =
        static_cast<double>(encoder.chunks().numChunks());
    const double bram_bw = hw::bramBandwidth(device_);

    std::size_t elem_bits = 1;
    const std::size_t r = encoder.chunks().chunkSize();
    while ((std::size_t{1} << elem_bits) < 2 * r + 1)
        ++elem_bits;
    const std::size_t acc_bits = hw::accumulatorBits(
        encoder.chunks().numChunks() * r);

    Stage quantize{"quantize",
                   std::max(1.0, n * q * datapath_.lutOpsPerCompare /
                                     lutThroughput()),
                   0.0};
    quantize.latency = quantize.initiationInterval + 2.0;
    Stage fetch{"table-fetch",
                std::max(1.0, m * d *
                                  static_cast<double>(elem_bits) /
                                  8.0 / bram_bw),
                0.0};
    fetch.latency = fetch.initiationInterval + 1.0;
    Stage aggregate{"bind-aggregate",
                    std::max(1.0, m * d *
                                      static_cast<double>(acc_bits) /
                                      lutThroughput()),
                    0.0};
    aggregate.latency = aggregate.initiationInterval + 3.0;
    const double window = static_cast<double>(
        hw::searchWindow(device_, model_groups));
    Stage search{"dsp-search", std::max(1.0, d / window), 0.0};
    search.latency = search.initiationInterval + 4.0;
    Stage unbind{"unbind-accumulate",
                 std::max(1.0, static_cast<double>(num_classes) * d *
                                   2.0 / lutThroughput()),
                 0.0};
    unbind.latency = unbind.initiationInterval + 2.0;

    return fromTiming(streamThrough(
        {quantize, fetch, aggregate, search, unbind},
        static_cast<double>(queries)));
}

SimReport
FpgaSimulator::lookhdRetrainEpoch(const LookupEncoder &encoder,
                                  std::size_t num_classes,
                                  std::size_t model_groups,
                                  std::size_t samples,
                                  std::size_t updates) const
{
    SimReport report = lookhdInfer(encoder, num_classes,
                                   model_groups, samples);
    // Compressed-domain updates: two D-wide shift/negate/add passes
    // per misprediction, applied to the model copy (Sec. V-C).
    const double d = static_cast<double>(encoder.dim());
    const double update_ops =
        2.0 * d * 4.0 * static_cast<double>(updates);
    const double update_cycles = update_ops / lutThroughput();
    report.totalCycles += update_cycles;
    report.seconds = secondsOf(report.totalCycles);
    report.stages.push_back(
        {"model-update", update_cycles,
         std::min(1.0, update_cycles / report.totalCycles), false});
    return report;
}

SimReport
FpgaSimulator::baselineTrain(std::size_t n, std::size_t q,
                             hdc::Dim dim, std::size_t samples) const
{
    const double nd = static_cast<double>(n);
    const double d = static_cast<double>(dim);
    const std::size_t acc_bits = hw::accumulatorBits(n);
    const double bram_bw = hw::bramBandwidth(device_);

    Stage quantize{"quantize",
                   std::max(1.0, nd * static_cast<double>(q) *
                                     datapath_.lutOpsPerCompare /
                                     lutThroughput()),
                   0.0};
    quantize.latency = quantize.initiationInterval + 2.0;
    Stage encode{"encode-aggregate",
                 std::max({1.0,
                           nd * d * static_cast<double>(acc_bits) /
                               lutThroughput(),
                           nd * d / 8.0 / bram_bw}),
                 0.0};
    encode.latency = encode.initiationInterval + 3.0;
    Stage accumulate{"class-accumulate",
                     std::max(1.0, d * 4.0 / lutThroughput()), 2.0};

    return fromTiming(streamThrough(
        {quantize, encode, accumulate},
        static_cast<double>(samples)));
}

SimReport
FpgaSimulator::baselineInfer(std::size_t n, std::size_t q,
                             hdc::Dim dim, std::size_t num_classes,
                             std::size_t queries) const
{
    const double nd = static_cast<double>(n);
    const double d = static_cast<double>(dim);
    const std::size_t acc_bits = hw::accumulatorBits(n);
    const double bram_bw = hw::bramBandwidth(device_);

    Stage quantize{"quantize",
                   std::max(1.0, nd * static_cast<double>(q) *
                                     datapath_.lutOpsPerCompare /
                                     lutThroughput()),
                   0.0};
    quantize.latency = quantize.initiationInterval + 2.0;
    Stage encode{"encode-aggregate",
                 std::max({1.0,
                           nd * d * static_cast<double>(acc_bits) /
                               lutThroughput(),
                           nd * d / 8.0 / bram_bw}),
                 0.0};
    encode.latency = encode.initiationInterval + 3.0;
    const double window = static_cast<double>(
        hw::searchWindow(device_, num_classes));
    Stage search{"dsp-search", std::max(1.0, d / window), 0.0};
    search.latency = search.initiationInterval + 4.0;

    return fromTiming(streamThrough(
        {quantize, encode, search}, static_cast<double>(queries)));
}

} // namespace lookhd::hwsim
