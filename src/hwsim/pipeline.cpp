#include "hwsim/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/obs.hpp"

namespace lookhd::hwsim {

std::string
PipelineTiming::bottleneckName() const
{
    for (const StageTiming &s : stages) {
        if (s.bottleneck)
            return s.name;
    }
    return "";
}

PipelineTiming
streamThrough(const std::vector<Stage> &stages, double items)
{
    if (stages.empty())
        throw std::invalid_argument("pipeline needs at least one stage");
    if (items < 1.0)
        throw std::invalid_argument("pipeline needs at least one item");
    for (const Stage &s : stages) {
        if (s.initiationInterval <= 0.0 || s.latency <= 0.0)
            throw std::invalid_argument(
                "stage intervals must be positive: " + s.name);
    }

    double fill = 0.0;
    double max_ii = 0.0;
    std::size_t bottleneck = 0;
    for (std::size_t i = 0; i < stages.size(); ++i) {
        fill += stages[i].latency;
        if (stages[i].initiationInterval > max_ii) {
            max_ii = stages[i].initiationInterval;
            bottleneck = i;
        }
    }

    LOOKHD_SPAN("hwsim.stream", "sim");
    PipelineTiming timing;
    timing.totalCycles = fill + (items - 1.0) * max_ii;
    LOOKHD_COUNT_ADD("hwsim.stream.calls", 1);
    LOOKHD_COUNT_ADD("hwsim.stream.cycles",
                     std::llround(timing.totalCycles));
    LOOKHD_GAUGE_SET("hwsim.stream.last_total_cycles",
                     timing.totalCycles);
    timing.stages.reserve(stages.size());
    for (std::size_t i = 0; i < stages.size(); ++i) {
        StageTiming st;
        st.name = stages[i].name;
        st.busyCycles = items * stages[i].initiationInterval;
        st.utilization =
            std::min(1.0, st.busyCycles / timing.totalCycles);
        st.bottleneck = i == bottleneck;
        timing.stages.push_back(std::move(st));
    }
    return timing;
}

} // namespace lookhd::hwsim
