#include "par/thread_pool.hpp"

#include <algorithm>

#include "obs/profiler.hpp"
#include "util/check.hpp"

namespace lookhd::par {

namespace {

/** Set while a pool worker (of any pool) is running chunks. */
thread_local bool tOnWorker = false;

} // namespace

/**
 * One parallelFor (or post) call. Workers and the caller claim chunks
 * through nextChunk until exhausted; the last finished chunk signals
 * done. The job outlives the queue entry via shared_ptr, so a worker
 * still running a chunk after the caller returns from wait() (it
 * cannot: wait() requires all chunks finished) or after the queue
 * entry is popped stays valid.
 */
struct ThreadPool::Job
{
    std::function<void(std::size_t, std::size_t)> body;
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t chunkSize = 1;
    std::size_t numChunks = 0;
    std::atomic<std::size_t> nextChunk{0};
    std::atomic<std::size_t> unfinished{0};
    util::Mutex mutex;
    util::CondVar done;
    std::exception_ptr error LOOKHD_GUARDED_BY(mutex);

    bool exhausted() const
    {
        return nextChunk.load(std::memory_order_acquire) >= numChunks;
    }
};

ThreadPool::ThreadPool(std::size_t threads)
    : threads_(std::max<std::size_t>(threads, 1))
{
    workers_.reserve(threads_ - 1);
    for (std::size_t i = 0; i + 1 < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        const util::MutexLock lock(mutex_);
        stop_ = true;
    }
    cv_.notifyAll();
    for (std::thread &w : workers_)
        w.join();
    // No workers (threads_ == 1): posted tasks were run inline, and
    // with workers the loop above only exits after the queue drained.
}

bool
ThreadPool::onWorkerThread()
{
    return tOnWorker;
}

void
ThreadPool::runChunks(Job &job)
{
    while (true) {
        const std::size_t c =
            job.nextChunk.fetch_add(1, std::memory_order_acq_rel);
        if (c >= job.numChunks)
            return;
        const std::size_t lo = job.begin + c * job.chunkSize;
        const std::size_t hi =
            std::min(job.end, lo + job.chunkSize);
        try {
            job.body(lo, hi);
        } catch (...) {
            const util::MutexLock lock(job.mutex);
            if (!job.error)
                job.error = std::current_exception();
        }
        if (job.unfinished.fetch_sub(1, std::memory_order_acq_rel) ==
            1) {
            // Last chunk: wake the waiter. Lock so the notify cannot
            // slot between the waiter's predicate check and its wait.
            const util::MutexLock lock(job.mutex);
            job.done.notifyAll();
        }
    }
}

void
ThreadPool::workerLoop()
{
    tOnWorker = true;
    // Pool workers burn most of the process CPU; make them visible
    // to the sampling profiler (no-op when compiled out).
    obs::Profiler::registerCurrentThread();
    while (true) {
        std::shared_ptr<Job> job;
        {
            const util::MutexLock lock(mutex_);
            while (!stop_ && jobs_.empty())
                cv_.wait(mutex_);
            if (jobs_.empty()) // implies stop_
                return;
            job = jobs_.front();
            if (job->exhausted()) {
                // All chunks claimed (possibly still running on
                // other threads); retire the queue entry.
                jobs_.pop_front();
                continue;
            }
        }
        runChunks(*job);
    }
}

void
ThreadPool::parallelFor(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)> &body,
    std::size_t minChunk)
{
    if (end <= begin)
        return;
    const std::size_t n = end - begin;
    minChunk = std::max<std::size_t>(minChunk, 1);
    // Inline when there is nothing to parallelize with, the range is
    // too small to split, or we are already inside a chunk body
    // (nested call: the workers may all be busy on the outer job, so
    // dispatching would deadlock a pool of blocking waiters; inline
    // execution always makes progress).
    if (threads_ <= 1 || n <= minChunk || tOnWorker) {
        body(begin, end);
        return;
    }

    auto job = std::make_shared<Job>();
    job->body = body;
    job->begin = begin;
    job->end = end;
    // At most one chunk per thread, at least minChunk indices each:
    // chunk count only affects scheduling, never results.
    const std::size_t maxChunks =
        std::min(threads_, (n + minChunk - 1) / minChunk);
    job->chunkSize = (n + maxChunks - 1) / maxChunks;
    job->numChunks = (n + job->chunkSize - 1) / job->chunkSize;
    job->unfinished.store(job->numChunks, std::memory_order_relaxed);

    {
        const util::MutexLock lock(mutex_);
        LOOKHD_CHECK(!stop_, "parallelFor on a stopped ThreadPool");
        jobs_.push_back(job);
    }
    cv_.notifyAll();

    // The caller is one of the executors; mark it worker-like so a
    // nested parallelFor inside body runs inline here too.
    tOnWorker = true;
    runChunks(*job);
    tOnWorker = false;

    {
        const util::MutexLock lock(job->mutex);
        while (job->unfinished.load(std::memory_order_acquire) != 0)
            job->done.wait(job->mutex);
        if (job->error)
            std::rethrow_exception(job->error);
    }
}

void
ThreadPool::post(std::function<void()> task)
{
    if (threads_ <= 1 || tOnWorker) {
        task();
        return;
    }
    auto job = std::make_shared<Job>();
    job->body = [moved = std::move(task)](std::size_t, std::size_t) {
        moved();
    };
    job->begin = 0;
    job->end = 1;
    job->chunkSize = 1;
    job->numChunks = 1;
    job->unfinished.store(1, std::memory_order_relaxed);
    {
        const util::MutexLock lock(mutex_);
        LOOKHD_CHECK(!stop_, "post on a stopped ThreadPool");
        jobs_.push_back(std::move(job));
    }
    cv_.notifyOne();
}

std::size_t
resolveThreads(std::size_t requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ThreadPool &
globalPool()
{
    static ThreadPool pool(resolveThreads(0));
    return pool;
}

} // namespace lookhd::par
