/**
 * @file
 * Fixed-size thread pool with a bounded, exception-propagating
 * parallelFor.
 *
 * The pool underpins every CPU-parallel path in the library: batched
 * prediction (lookhd::Classifier::predictBatch), sharded counter
 * training (lookhd::CounterTrainer) and the serve workers' intra-batch
 * scoring. It is deliberately small:
 *
 *  - fixed worker count chosen at construction; no work stealing, no
 *    dynamic resizing, no task priorities;
 *  - parallelFor(begin, end, body) splits the index range into
 *    contiguous chunks, the calling thread participates, and the call
 *    returns only when every chunk has run (bounded: nothing outlives
 *    the call);
 *  - the first exception thrown by any chunk is captured and rethrown
 *    on the calling thread after the remaining chunks drain;
 *  - nested parallelFor from inside a chunk body runs inline on the
 *    current thread, so composed parallel code cannot deadlock the
 *    pool;
 *  - post() is a fire-and-forget escape hatch; the destructor drains
 *    all queued work before joining.
 *
 * Determinism: parallelFor only decides *which thread* runs which
 * contiguous chunk; callers that write disjoint output slots (or merge
 * exact integer partials in index order, as the counter trainer does)
 * get bit-identical results for every thread count, including 1.
 */

#ifndef LOOKHD_PAR_THREAD_POOL_HPP
#define LOOKHD_PAR_THREAD_POOL_HPP

#include <atomic>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace lookhd::par {

/** Fixed-size worker pool; see file comment for the contract. */
class ThreadPool
{
  public:
    /**
     * @param threads Total concurrency of parallelFor calls: the
     *        calling thread plus threads-1 workers. 0 and 1 both mean
     *        "no workers, run everything inline".
     */
    explicit ThreadPool(std::size_t threads);

    /** Drains queued work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total concurrency (workers + the calling thread), >= 1. */
    std::size_t threads() const { return threads_; }

    /**
     * Run body(lo, hi) over contiguous chunks covering [begin, end),
     * on the workers plus the calling thread, returning when all
     * chunks completed. Chunks never overlap and never exceed the
     * range. The first exception from any chunk is rethrown here.
     * Calls from inside a chunk body run inline (no deadlock).
     *
     * @param minChunk Smallest chunk worth dispatching; ranges at or
     *        below it run inline.
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t, std::size_t)>
                         &body,
                     std::size_t minChunk = 1);

    /**
     * Fire-and-forget task. Exceptions escaping the task are
     * swallowed (there is no caller to rethrow to); prefer
     * parallelFor for anything that can fail. All posted tasks run
     * before the destructor returns.
     */
    void post(std::function<void()> task);

    /** True on a pool worker thread (any pool's). */
    static bool onWorkerThread();

  private:
    struct Job;

    void workerLoop();
    static void runChunks(Job &job);

    std::size_t threads_;
    std::vector<std::thread> workers_;
    util::Mutex mutex_;
    util::CondVar cv_;
    std::deque<std::shared_ptr<Job>> jobs_ LOOKHD_GUARDED_BY(mutex_);
    bool stop_ LOOKHD_GUARDED_BY(mutex_) = false;
};

/**
 * Resolve a user-facing thread-count knob: 0 = one per hardware
 * thread, otherwise the value itself (>= 1).
 */
std::size_t resolveThreads(std::size_t requested);

/**
 * Process-wide pool shared by library batch paths, sized lazily to
 * resolveThreads(0) on first use. Use a dedicated ThreadPool instead
 * when a component needs its own sizing.
 */
ThreadPool &globalPool();

} // namespace lookhd::par

#endif // LOOKHD_PAR_THREAD_POOL_HPP
