# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build_obsoff
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(lint.determinism "/root/.pyenv/shims/python3" "/root/repo/tools/lint_determinism.py")
set_tests_properties(lint.determinism PROPERTIES  WORKING_DIRECTORY "/root/repo" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;112;add_test;/root/repo/CMakeLists.txt;0;")
subdirs("src")
subdirs("tests")
subdirs("bench")
subdirs("examples")
subdirs("tools")
