# Empty dependencies file for lookhd_tests.
# This may be replaced when dependencies are built.
