
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baseline_hdc.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_baseline_hdc.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_baseline_hdc.cpp.o.d"
  "/root/repo/tests/test_binary_model.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_binary_model.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_binary_model.cpp.o.d"
  "/root/repo/tests/test_bitpack.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_bitpack.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_bitpack.cpp.o.d"
  "/root/repo/tests/test_check.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_check.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_check.cpp.o.d"
  "/root/repo/tests/test_chunking.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_chunking.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_chunking.cpp.o.d"
  "/root/repo/tests/test_classifier.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_classifier.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_classifier.cpp.o.d"
  "/root/repo/tests/test_clustering.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_clustering.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_clustering.cpp.o.d"
  "/root/repo/tests/test_codebook.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_codebook.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_codebook.cpp.o.d"
  "/root/repo/tests/test_compressed_model.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_compressed_model.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_compressed_model.cpp.o.d"
  "/root/repo/tests/test_counter_trainer.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_counter_trainer.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_counter_trainer.cpp.o.d"
  "/root/repo/tests/test_csv.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_csv.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_csv.cpp.o.d"
  "/root/repo/tests/test_dataset.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_dataset.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_dataset.cpp.o.d"
  "/root/repo/tests/test_failure_injection.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_failure_injection.cpp.o.d"
  "/root/repo/tests/test_histogram.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_histogram.cpp.o.d"
  "/root/repo/tests/test_hw_golden.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_hw_golden.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_hw_golden.cpp.o.d"
  "/root/repo/tests/test_hw_models.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_hw_models.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_hw_models.cpp.o.d"
  "/root/repo/tests/test_hw_properties.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_hw_properties.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_hw_properties.cpp.o.d"
  "/root/repo/tests/test_hwsim.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_hwsim.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_hwsim.cpp.o.d"
  "/root/repo/tests/test_hypervector.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_hypervector.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_hypervector.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_item_memory.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_item_memory.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_item_memory.cpp.o.d"
  "/root/repo/tests/test_kitchen_sink.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_kitchen_sink.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_kitchen_sink.cpp.o.d"
  "/root/repo/tests/test_lookup_encoder.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_lookup_encoder.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_lookup_encoder.cpp.o.d"
  "/root/repo/tests/test_lookup_table.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_lookup_table.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_lookup_table.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_mlp.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_mlp.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_mlp.cpp.o.d"
  "/root/repo/tests/test_ngram_encoder.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_ngram_encoder.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_ngram_encoder.cpp.o.d"
  "/root/repo/tests/test_obs.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_obs.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_obs.cpp.o.d"
  "/root/repo/tests/test_obs_off_compile.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_obs_off_compile.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_obs_off_compile.cpp.o.d"
  "/root/repo/tests/test_obs_overhead.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_obs_overhead.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_obs_overhead.cpp.o.d"
  "/root/repo/tests/test_online_trainer.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_online_trainer.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_online_trainer.cpp.o.d"
  "/root/repo/tests/test_perfcounters.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_perfcounters.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_perfcounters.cpp.o.d"
  "/root/repo/tests/test_progressive.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_progressive.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_progressive.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_quality.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_quality.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_quality.cpp.o.d"
  "/root/repo/tests/test_quantized_model.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_quantized_model.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_quantized_model.cpp.o.d"
  "/root/repo/tests/test_quantizer_bank.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_quantizer_bank.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_quantizer_bank.cpp.o.d"
  "/root/repo/tests/test_quantizers.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_quantizers.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_quantizers.cpp.o.d"
  "/root/repo/tests/test_record_encoder.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_record_encoder.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_record_encoder.cpp.o.d"
  "/root/repo/tests/test_retrainer.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_retrainer.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_retrainer.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_serialize.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_serialize.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_synthetic.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_synthetic.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_synthetic.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_umbrella.cpp" "tests/CMakeFiles/lookhd_tests.dir/test_umbrella.cpp.o" "gcc" "tests/CMakeFiles/lookhd_tests.dir/test_umbrella.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_obsoff/src/CMakeFiles/lookhd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
