# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build_obsoff/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_round_trip "/usr/bin/cmake" "-DTRAIN=/root/repo/build_obsoff/tools/lookhd_train" "-DPREDICT=/root/repo/build_obsoff/tools/lookhd_predict" "-DINFO=/root/repo/build_obsoff/tools/lookhd_info" "-DWORKDIR=/root/repo/build_obsoff/tools" "-P" "/root/repo/tools/cli_test.cmake")
set_tests_properties(cli_round_trip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
