# Empty dependencies file for lookhd_predict.
# This may be replaced when dependencies are built.
