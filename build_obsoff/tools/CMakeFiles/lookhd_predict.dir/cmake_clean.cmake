file(REMOVE_RECURSE
  "CMakeFiles/lookhd_predict.dir/lookhd_predict.cpp.o"
  "CMakeFiles/lookhd_predict.dir/lookhd_predict.cpp.o.d"
  "lookhd_predict"
  "lookhd_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lookhd_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
