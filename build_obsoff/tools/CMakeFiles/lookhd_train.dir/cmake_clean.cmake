file(REMOVE_RECURSE
  "CMakeFiles/lookhd_train.dir/lookhd_train.cpp.o"
  "CMakeFiles/lookhd_train.dir/lookhd_train.cpp.o.d"
  "lookhd_train"
  "lookhd_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lookhd_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
