# Empty dependencies file for lookhd_train.
# This may be replaced when dependencies are built.
