# Empty compiler generated dependencies file for lookhd_info.
# This may be replaced when dependencies are built.
