file(REMOVE_RECURSE
  "CMakeFiles/lookhd_info.dir/lookhd_info.cpp.o"
  "CMakeFiles/lookhd_info.dir/lookhd_info.cpp.o.d"
  "lookhd_info"
  "lookhd_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lookhd_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
