
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/mlp.cpp" "src/CMakeFiles/lookhd.dir/baseline/mlp.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/baseline/mlp.cpp.o.d"
  "/root/repo/src/baseline/mlp_fpga_model.cpp" "src/CMakeFiles/lookhd.dir/baseline/mlp_fpga_model.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/baseline/mlp_fpga_model.cpp.o.d"
  "/root/repo/src/data/apps.cpp" "src/CMakeFiles/lookhd.dir/data/apps.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/data/apps.cpp.o.d"
  "/root/repo/src/data/csv.cpp" "src/CMakeFiles/lookhd.dir/data/csv.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/data/csv.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/lookhd.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/metrics.cpp" "src/CMakeFiles/lookhd.dir/data/metrics.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/data/metrics.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "src/CMakeFiles/lookhd.dir/data/synthetic.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/data/synthetic.cpp.o.d"
  "/root/repo/src/hdc/binary_model.cpp" "src/CMakeFiles/lookhd.dir/hdc/binary_model.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/hdc/binary_model.cpp.o.d"
  "/root/repo/src/hdc/bitpack.cpp" "src/CMakeFiles/lookhd.dir/hdc/bitpack.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/hdc/bitpack.cpp.o.d"
  "/root/repo/src/hdc/clustering.cpp" "src/CMakeFiles/lookhd.dir/hdc/clustering.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/hdc/clustering.cpp.o.d"
  "/root/repo/src/hdc/encoder.cpp" "src/CMakeFiles/lookhd.dir/hdc/encoder.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/hdc/encoder.cpp.o.d"
  "/root/repo/src/hdc/hypervector.cpp" "src/CMakeFiles/lookhd.dir/hdc/hypervector.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/hdc/hypervector.cpp.o.d"
  "/root/repo/src/hdc/item_memory.cpp" "src/CMakeFiles/lookhd.dir/hdc/item_memory.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/hdc/item_memory.cpp.o.d"
  "/root/repo/src/hdc/model.cpp" "src/CMakeFiles/lookhd.dir/hdc/model.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/hdc/model.cpp.o.d"
  "/root/repo/src/hdc/ngram_encoder.cpp" "src/CMakeFiles/lookhd.dir/hdc/ngram_encoder.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/hdc/ngram_encoder.cpp.o.d"
  "/root/repo/src/hdc/online_trainer.cpp" "src/CMakeFiles/lookhd.dir/hdc/online_trainer.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/hdc/online_trainer.cpp.o.d"
  "/root/repo/src/hdc/quantized_model.cpp" "src/CMakeFiles/lookhd.dir/hdc/quantized_model.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/hdc/quantized_model.cpp.o.d"
  "/root/repo/src/hdc/record_encoder.cpp" "src/CMakeFiles/lookhd.dir/hdc/record_encoder.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/hdc/record_encoder.cpp.o.d"
  "/root/repo/src/hdc/similarity.cpp" "src/CMakeFiles/lookhd.dir/hdc/similarity.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/hdc/similarity.cpp.o.d"
  "/root/repo/src/hdc/trainer.cpp" "src/CMakeFiles/lookhd.dir/hdc/trainer.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/hdc/trainer.cpp.o.d"
  "/root/repo/src/hw/cpu_model.cpp" "src/CMakeFiles/lookhd.dir/hw/cpu_model.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/hw/cpu_model.cpp.o.d"
  "/root/repo/src/hw/energy.cpp" "src/CMakeFiles/lookhd.dir/hw/energy.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/hw/energy.cpp.o.d"
  "/root/repo/src/hw/fpga_model.cpp" "src/CMakeFiles/lookhd.dir/hw/fpga_model.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/hw/fpga_model.cpp.o.d"
  "/root/repo/src/hw/gpu_model.cpp" "src/CMakeFiles/lookhd.dir/hw/gpu_model.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/hw/gpu_model.cpp.o.d"
  "/root/repo/src/hw/report.cpp" "src/CMakeFiles/lookhd.dir/hw/report.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/hw/report.cpp.o.d"
  "/root/repo/src/hw/resources.cpp" "src/CMakeFiles/lookhd.dir/hw/resources.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/hw/resources.cpp.o.d"
  "/root/repo/src/hwsim/lookhd_sim.cpp" "src/CMakeFiles/lookhd.dir/hwsim/lookhd_sim.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/hwsim/lookhd_sim.cpp.o.d"
  "/root/repo/src/hwsim/pipeline.cpp" "src/CMakeFiles/lookhd.dir/hwsim/pipeline.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/hwsim/pipeline.cpp.o.d"
  "/root/repo/src/lookhd/chunking.cpp" "src/CMakeFiles/lookhd.dir/lookhd/chunking.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/lookhd/chunking.cpp.o.d"
  "/root/repo/src/lookhd/classifier.cpp" "src/CMakeFiles/lookhd.dir/lookhd/classifier.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/lookhd/classifier.cpp.o.d"
  "/root/repo/src/lookhd/codebook.cpp" "src/CMakeFiles/lookhd.dir/lookhd/codebook.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/lookhd/codebook.cpp.o.d"
  "/root/repo/src/lookhd/compressed_model.cpp" "src/CMakeFiles/lookhd.dir/lookhd/compressed_model.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/lookhd/compressed_model.cpp.o.d"
  "/root/repo/src/lookhd/counter_trainer.cpp" "src/CMakeFiles/lookhd.dir/lookhd/counter_trainer.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/lookhd/counter_trainer.cpp.o.d"
  "/root/repo/src/lookhd/lookup_encoder.cpp" "src/CMakeFiles/lookhd.dir/lookhd/lookup_encoder.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/lookhd/lookup_encoder.cpp.o.d"
  "/root/repo/src/lookhd/lookup_table.cpp" "src/CMakeFiles/lookhd.dir/lookhd/lookup_table.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/lookhd/lookup_table.cpp.o.d"
  "/root/repo/src/lookhd/retrainer.cpp" "src/CMakeFiles/lookhd.dir/lookhd/retrainer.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/lookhd/retrainer.cpp.o.d"
  "/root/repo/src/lookhd/serialize.cpp" "src/CMakeFiles/lookhd.dir/lookhd/serialize.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/lookhd/serialize.cpp.o.d"
  "/root/repo/src/obs/json.cpp" "src/CMakeFiles/lookhd.dir/obs/json.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/obs/json.cpp.o.d"
  "/root/repo/src/obs/metrics.cpp" "src/CMakeFiles/lookhd.dir/obs/metrics.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/obs/metrics.cpp.o.d"
  "/root/repo/src/obs/perfcounters.cpp" "src/CMakeFiles/lookhd.dir/obs/perfcounters.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/obs/perfcounters.cpp.o.d"
  "/root/repo/src/obs/quality.cpp" "src/CMakeFiles/lookhd.dir/obs/quality.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/obs/quality.cpp.o.d"
  "/root/repo/src/obs/trace.cpp" "src/CMakeFiles/lookhd.dir/obs/trace.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/obs/trace.cpp.o.d"
  "/root/repo/src/quant/boundary_quantizer.cpp" "src/CMakeFiles/lookhd.dir/quant/boundary_quantizer.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/quant/boundary_quantizer.cpp.o.d"
  "/root/repo/src/quant/equalized_quantizer.cpp" "src/CMakeFiles/lookhd.dir/quant/equalized_quantizer.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/quant/equalized_quantizer.cpp.o.d"
  "/root/repo/src/quant/linear_quantizer.cpp" "src/CMakeFiles/lookhd.dir/quant/linear_quantizer.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/quant/linear_quantizer.cpp.o.d"
  "/root/repo/src/quant/quantizer.cpp" "src/CMakeFiles/lookhd.dir/quant/quantizer.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/quant/quantizer.cpp.o.d"
  "/root/repo/src/quant/quantizer_bank.cpp" "src/CMakeFiles/lookhd.dir/quant/quantizer_bank.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/quant/quantizer_bank.cpp.o.d"
  "/root/repo/src/util/check.cpp" "src/CMakeFiles/lookhd.dir/util/check.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/util/check.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "src/CMakeFiles/lookhd.dir/util/histogram.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/util/histogram.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/lookhd.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/lookhd.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/lookhd.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/util/table.cpp.o.d"
  "/root/repo/src/util/timer.cpp" "src/CMakeFiles/lookhd.dir/util/timer.cpp.o" "gcc" "src/CMakeFiles/lookhd.dir/util/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
