src/CMakeFiles/lookhd.dir/hw/energy.cpp.o: /root/repo/src/hw/energy.cpp \
 /usr/include/stdc-predef.h /root/repo/src/hw/energy.hpp \
 /usr/include/c++/12/cstddef \
 /usr/include/x86_64-linux-gnu/c++/12/bits/c++config.h \
 /usr/include/x86_64-linux-gnu/c++/12/bits/os_defines.h \
 /usr/include/features.h /usr/include/features-time64.h \
 /usr/include/x86_64-linux-gnu/bits/wordsize.h \
 /usr/include/x86_64-linux-gnu/bits/timesize.h \
 /usr/include/x86_64-linux-gnu/sys/cdefs.h \
 /usr/include/x86_64-linux-gnu/bits/long-double.h \
 /usr/include/x86_64-linux-gnu/gnu/stubs.h \
 /usr/include/x86_64-linux-gnu/gnu/stubs-64.h \
 /usr/include/x86_64-linux-gnu/c++/12/bits/cpu_defines.h \
 /usr/include/c++/12/pstl/pstl_config.h \
 /usr/lib/gcc/x86_64-linux-gnu/12/include/stddef.h
