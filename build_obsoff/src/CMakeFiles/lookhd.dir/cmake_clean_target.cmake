file(REMOVE_RECURSE
  "liblookhd.a"
)
