# Empty compiler generated dependencies file for lookhd.
# This may be replaced when dependencies are built.
