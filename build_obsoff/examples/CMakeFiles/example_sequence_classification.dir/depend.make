# Empty dependencies file for example_sequence_classification.
# This may be replaced when dependencies are built.
