file(REMOVE_RECURSE
  "CMakeFiles/example_sequence_classification.dir/sequence_classification.cpp.o"
  "CMakeFiles/example_sequence_classification.dir/sequence_classification.cpp.o.d"
  "example_sequence_classification"
  "example_sequence_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sequence_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
