file(REMOVE_RECURSE
  "CMakeFiles/example_speech_recognition.dir/speech_recognition.cpp.o"
  "CMakeFiles/example_speech_recognition.dir/speech_recognition.cpp.o.d"
  "example_speech_recognition"
  "example_speech_recognition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_speech_recognition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
