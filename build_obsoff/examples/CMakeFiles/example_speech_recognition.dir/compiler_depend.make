# Empty compiler generated dependencies file for example_speech_recognition.
# This may be replaced when dependencies are built.
