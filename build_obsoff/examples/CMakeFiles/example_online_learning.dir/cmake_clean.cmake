file(REMOVE_RECURSE
  "CMakeFiles/example_online_learning.dir/online_learning.cpp.o"
  "CMakeFiles/example_online_learning.dir/online_learning.cpp.o.d"
  "example_online_learning"
  "example_online_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_online_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
