# Empty compiler generated dependencies file for example_online_learning.
# This may be replaced when dependencies are built.
