file(REMOVE_RECURSE
  "CMakeFiles/example_activity_recognition.dir/activity_recognition.cpp.o"
  "CMakeFiles/example_activity_recognition.dir/activity_recognition.cpp.o.d"
  "example_activity_recognition"
  "example_activity_recognition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_activity_recognition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
