# Empty dependencies file for example_activity_recognition.
# This may be replaced when dependencies are built.
