# Empty dependencies file for example_clustering_demo.
# This may be replaced when dependencies are built.
