file(REMOVE_RECURSE
  "CMakeFiles/example_clustering_demo.dir/clustering_demo.cpp.o"
  "CMakeFiles/example_clustering_demo.dir/clustering_demo.cpp.o.d"
  "example_clustering_demo"
  "example_clustering_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_clustering_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
