# Empty compiler generated dependencies file for example_model_compression.
# This may be replaced when dependencies are built.
