file(REMOVE_RECURSE
  "CMakeFiles/example_model_compression.dir/model_compression.cpp.o"
  "CMakeFiles/example_model_compression.dir/model_compression.cpp.o.d"
  "example_model_compression"
  "example_model_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_model_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
