# Empty custom commands generated dependencies file for lint_all.
# This may be replaced when dependencies are built.
