file(REMOVE_RECURSE
  "CMakeFiles/lint_all"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/lint_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
