# Empty custom commands generated dependencies file for lint_determinism.
# This may be replaced when dependencies are built.
