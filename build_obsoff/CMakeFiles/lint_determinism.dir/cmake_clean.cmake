file(REMOVE_RECURSE
  "CMakeFiles/lint_determinism"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/lint_determinism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
