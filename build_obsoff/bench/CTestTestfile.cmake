# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build_obsoff/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench.smoke_fig02 "/root/repo/build_obsoff/bench/bench_fig02_breakdown" "--quick" "--out-dir" "/root/repo/build_obsoff/bench_json")
set_tests_properties(bench.smoke_fig02 PROPERTIES  FIXTURES_SETUP "bench_json" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;26;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench.smoke_fig04 "/root/repo/build_obsoff/bench/bench_fig04_quant_accuracy" "--quick" "--out-dir" "/root/repo/build_obsoff/bench_json")
set_tests_properties(bench.smoke_fig04 PROPERTIES  FIXTURES_SETUP "bench_json" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;29;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(lint.bench_json "/root/.pyenv/shims/python3" "/root/repo/tools/validate_bench_json.py" "/root/repo/build_obsoff/bench_json")
set_tests_properties(lint.bench_json PROPERTIES  FIXTURES_REQUIRED "bench_json" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;32;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench.regression "/root/.pyenv/shims/python3" "/root/repo/tools/bench_compare.py" "/root/repo/bench/baselines" "/root/repo/build_obsoff/bench_json" "--thresholds" "/root/repo/bench/baselines/thresholds.json" "--md-out" "/root/repo/build_obsoff/bench_regression.md")
set_tests_properties(bench.regression PROPERTIES  FIXTURES_REQUIRED "bench_json" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;36;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench.compare_selftest "/root/.pyenv/shims/python3" "/root/repo/tools/test_bench_compare.py")
set_tests_properties(bench.compare_selftest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
