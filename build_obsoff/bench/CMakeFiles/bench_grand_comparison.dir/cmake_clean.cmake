file(REMOVE_RECURSE
  "CMakeFiles/bench_grand_comparison.dir/bench_grand_comparison.cpp.o"
  "CMakeFiles/bench_grand_comparison.dir/bench_grand_comparison.cpp.o.d"
  "bench_grand_comparison"
  "bench_grand_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grand_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
