# Empty compiler generated dependencies file for bench_grand_comparison.
# This may be replaced when dependencies are built.
