# Empty dependencies file for bench_table4_mlp.
# This may be replaced when dependencies are built.
