file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_mlp.dir/bench_table4_mlp.cpp.o"
  "CMakeFiles/bench_table4_mlp.dir/bench_table4_mlp.cpp.o.d"
  "bench_table4_mlp"
  "bench_table4_mlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
