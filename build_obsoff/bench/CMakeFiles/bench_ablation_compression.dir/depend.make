# Empty dependencies file for bench_ablation_compression.
# This may be replaced when dependencies are built.
