file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_compression.dir/bench_ablation_compression.cpp.o"
  "CMakeFiles/bench_ablation_compression.dir/bench_ablation_compression.cpp.o.d"
  "bench_ablation_compression"
  "bench_ablation_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
