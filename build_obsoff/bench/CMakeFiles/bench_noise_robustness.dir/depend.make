# Empty dependencies file for bench_noise_robustness.
# This may be replaced when dependencies are built.
