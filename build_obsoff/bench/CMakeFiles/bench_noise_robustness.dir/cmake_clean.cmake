file(REMOVE_RECURSE
  "CMakeFiles/bench_noise_robustness.dir/bench_noise_robustness.cpp.o"
  "CMakeFiles/bench_noise_robustness.dir/bench_noise_robustness.cpp.o.d"
  "bench_noise_robustness"
  "bench_noise_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_noise_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
