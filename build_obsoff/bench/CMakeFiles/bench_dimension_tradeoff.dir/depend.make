# Empty dependencies file for bench_dimension_tradeoff.
# This may be replaced when dependencies are built.
