file(REMOVE_RECURSE
  "CMakeFiles/bench_dimension_tradeoff.dir/bench_dimension_tradeoff.cpp.o"
  "CMakeFiles/bench_dimension_tradeoff.dir/bench_dimension_tradeoff.cpp.o.d"
  "bench_dimension_tradeoff"
  "bench_dimension_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dimension_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
