# Empty dependencies file for bench_binary_vs_lookhd.
# This may be replaced when dependencies are built.
