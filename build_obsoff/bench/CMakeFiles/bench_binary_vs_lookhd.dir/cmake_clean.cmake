file(REMOVE_RECURSE
  "CMakeFiles/bench_binary_vs_lookhd.dir/bench_binary_vs_lookhd.cpp.o"
  "CMakeFiles/bench_binary_vs_lookhd.dir/bench_binary_vs_lookhd.cpp.o.d"
  "bench_binary_vs_lookhd"
  "bench_binary_vs_lookhd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_binary_vs_lookhd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
