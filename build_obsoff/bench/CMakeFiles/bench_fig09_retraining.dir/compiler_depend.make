# Empty compiler generated dependencies file for bench_fig09_retraining.
# This may be replaced when dependencies are built.
