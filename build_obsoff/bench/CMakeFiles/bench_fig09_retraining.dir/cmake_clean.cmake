file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_retraining.dir/bench_fig09_retraining.cpp.o"
  "CMakeFiles/bench_fig09_retraining.dir/bench_fig09_retraining.cpp.o.d"
  "bench_fig09_retraining"
  "bench_fig09_retraining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_retraining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
