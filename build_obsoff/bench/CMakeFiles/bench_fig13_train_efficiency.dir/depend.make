# Empty dependencies file for bench_fig13_train_efficiency.
# This may be replaced when dependencies are built.
