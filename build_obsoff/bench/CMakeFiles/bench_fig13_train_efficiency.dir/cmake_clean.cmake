file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_train_efficiency.dir/bench_fig13_train_efficiency.cpp.o"
  "CMakeFiles/bench_fig13_train_efficiency.dir/bench_fig13_train_efficiency.cpp.o.d"
  "bench_fig13_train_efficiency"
  "bench_fig13_train_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_train_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
