file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_resources.dir/bench_fig16_resources.cpp.o"
  "CMakeFiles/bench_fig16_resources.dir/bench_fig16_resources.cpp.o.d"
  "bench_fig16_resources"
  "bench_fig16_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
