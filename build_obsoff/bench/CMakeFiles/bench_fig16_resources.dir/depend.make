# Empty dependencies file for bench_fig16_resources.
# This may be replaced when dependencies are built.
