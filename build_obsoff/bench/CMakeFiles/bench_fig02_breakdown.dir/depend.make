# Empty dependencies file for bench_fig02_breakdown.
# This may be replaced when dependencies are built.
