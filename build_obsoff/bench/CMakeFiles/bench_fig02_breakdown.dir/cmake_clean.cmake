file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_breakdown.dir/bench_fig02_breakdown.cpp.o"
  "CMakeFiles/bench_fig02_breakdown.dir/bench_fig02_breakdown.cpp.o.d"
  "bench_fig02_breakdown"
  "bench_fig02_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
