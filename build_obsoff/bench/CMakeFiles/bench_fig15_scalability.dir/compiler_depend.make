# Empty compiler generated dependencies file for bench_fig15_scalability.
# This may be replaced when dependencies are built.
