file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_encodings.dir/bench_ablation_encodings.cpp.o"
  "CMakeFiles/bench_ablation_encodings.dir/bench_ablation_encodings.cpp.o.d"
  "bench_ablation_encodings"
  "bench_ablation_encodings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_encodings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
