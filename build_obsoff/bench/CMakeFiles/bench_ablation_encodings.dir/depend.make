# Empty dependencies file for bench_ablation_encodings.
# This may be replaced when dependencies are built.
