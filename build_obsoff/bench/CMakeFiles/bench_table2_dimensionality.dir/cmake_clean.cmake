file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_dimensionality.dir/bench_table2_dimensionality.cpp.o"
  "CMakeFiles/bench_table2_dimensionality.dir/bench_table2_dimensionality.cpp.o.d"
  "bench_table2_dimensionality"
  "bench_table2_dimensionality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_dimensionality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
