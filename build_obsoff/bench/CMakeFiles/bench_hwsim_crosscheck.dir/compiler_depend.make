# Empty compiler generated dependencies file for bench_hwsim_crosscheck.
# This may be replaced when dependencies are built.
