file(REMOVE_RECURSE
  "CMakeFiles/bench_hwsim_crosscheck.dir/bench_hwsim_crosscheck.cpp.o"
  "CMakeFiles/bench_hwsim_crosscheck.dir/bench_hwsim_crosscheck.cpp.o.d"
  "bench_hwsim_crosscheck"
  "bench_hwsim_crosscheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hwsim_crosscheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
