# Empty dependencies file for bench_table1_apps.
# This may be replaced when dependencies are built.
