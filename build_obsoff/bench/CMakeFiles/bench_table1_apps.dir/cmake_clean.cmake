file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_apps.dir/bench_table1_apps.cpp.o"
  "CMakeFiles/bench_table1_apps.dir/bench_table1_apps.cpp.o.d"
  "bench_table1_apps"
  "bench_table1_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
