file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_quant_accuracy.dir/bench_fig04_quant_accuracy.cpp.o"
  "CMakeFiles/bench_fig04_quant_accuracy.dir/bench_fig04_quant_accuracy.cpp.o.d"
  "bench_fig04_quant_accuracy"
  "bench_fig04_quant_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_quant_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
