# Empty compiler generated dependencies file for bench_fig04_quant_accuracy.
# This may be replaced when dependencies are built.
