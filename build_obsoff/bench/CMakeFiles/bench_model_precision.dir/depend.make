# Empty dependencies file for bench_model_precision.
# This may be replaced when dependencies are built.
