file(REMOVE_RECURSE
  "CMakeFiles/bench_model_precision.dir/bench_model_precision.cpp.o"
  "CMakeFiles/bench_model_precision.dir/bench_model_precision.cpp.o.d"
  "bench_model_precision"
  "bench_model_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
