# Empty dependencies file for bench_fig08_cosine_dist.
# This may be replaced when dependencies are built.
