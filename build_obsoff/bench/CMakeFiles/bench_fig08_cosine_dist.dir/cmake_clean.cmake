file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_cosine_dist.dir/bench_fig08_cosine_dist.cpp.o"
  "CMakeFiles/bench_fig08_cosine_dist.dir/bench_fig08_cosine_dist.cpp.o.d"
  "bench_fig08_cosine_dist"
  "bench_fig08_cosine_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_cosine_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
