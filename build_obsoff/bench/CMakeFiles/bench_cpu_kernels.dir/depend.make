# Empty dependencies file for bench_cpu_kernels.
# This may be replaced when dependencies are built.
