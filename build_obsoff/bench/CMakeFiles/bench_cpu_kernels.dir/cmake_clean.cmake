file(REMOVE_RECURSE
  "CMakeFiles/bench_cpu_kernels.dir/bench_cpu_kernels.cpp.o"
  "CMakeFiles/bench_cpu_kernels.dir/bench_cpu_kernels.cpp.o.d"
  "bench_cpu_kernels"
  "bench_cpu_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cpu_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
