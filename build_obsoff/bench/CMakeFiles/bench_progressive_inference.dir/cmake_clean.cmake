file(REMOVE_RECURSE
  "CMakeFiles/bench_progressive_inference.dir/bench_progressive_inference.cpp.o"
  "CMakeFiles/bench_progressive_inference.dir/bench_progressive_inference.cpp.o.d"
  "bench_progressive_inference"
  "bench_progressive_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_progressive_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
