# Empty compiler generated dependencies file for bench_progressive_inference.
# This may be replaced when dependencies are built.
