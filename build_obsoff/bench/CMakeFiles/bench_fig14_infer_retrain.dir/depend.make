# Empty dependencies file for bench_fig14_infer_retrain.
# This may be replaced when dependencies are built.
