file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_infer_retrain.dir/bench_fig14_infer_retrain.cpp.o"
  "CMakeFiles/bench_fig14_infer_retrain.dir/bench_fig14_infer_retrain.cpp.o.d"
  "bench_fig14_infer_retrain"
  "bench_fig14_infer_retrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_infer_retrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
