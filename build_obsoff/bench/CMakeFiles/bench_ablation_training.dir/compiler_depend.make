# Empty compiler generated dependencies file for bench_ablation_training.
# This may be replaced when dependencies are built.
