file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_training.dir/bench_ablation_training.cpp.o"
  "CMakeFiles/bench_ablation_training.dir/bench_ablation_training.cpp.o.d"
  "bench_ablation_training"
  "bench_ablation_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
