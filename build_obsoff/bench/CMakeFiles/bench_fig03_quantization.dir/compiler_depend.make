# Empty compiler generated dependencies file for bench_fig03_quantization.
# This may be replaced when dependencies are built.
