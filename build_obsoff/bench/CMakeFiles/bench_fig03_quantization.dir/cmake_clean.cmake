file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_quantization.dir/bench_fig03_quantization.cpp.o"
  "CMakeFiles/bench_fig03_quantization.dir/bench_fig03_quantization.cpp.o.d"
  "bench_fig03_quantization"
  "bench_fig03_quantization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
