file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_gpu.dir/bench_table3_gpu.cpp.o"
  "CMakeFiles/bench_table3_gpu.dir/bench_table3_gpu.cpp.o.d"
  "bench_table3_gpu"
  "bench_table3_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
