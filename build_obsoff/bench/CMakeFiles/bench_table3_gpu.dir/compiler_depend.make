# Empty compiler generated dependencies file for bench_table3_gpu.
# This may be replaced when dependencies are built.
