# Empty compiler generated dependencies file for bench_fig12_chunk_sweep.
# This may be replaced when dependencies are built.
