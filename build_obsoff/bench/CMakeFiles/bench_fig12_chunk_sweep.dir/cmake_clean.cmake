file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_chunk_sweep.dir/bench_fig12_chunk_sweep.cpp.o"
  "CMakeFiles/bench_fig12_chunk_sweep.dir/bench_fig12_chunk_sweep.cpp.o.d"
  "bench_fig12_chunk_sweep"
  "bench_fig12_chunk_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_chunk_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
